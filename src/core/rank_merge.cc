#include "core/rank_merge.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "core/policy/promotion_policy.h"

namespace randrank {

size_t MergePrefix(const RankPromotionConfig& config,
                   const std::vector<uint32_t>& det,
                   const std::vector<uint32_t>& pool, size_t m, Rng& rng,
                   std::vector<uint32_t>* out) {
  PoolPrefixSampler sampler(pool.data(), pool.size());
  return MergePrefixCached(config, det.data(), det.size(), sampler, m, rng,
                           out);
}

size_t MergePrefixCached(const RankPromotionConfig& config, const uint32_t* det,
                         size_t det_size, PoolPrefixSampler& sampler, size_t m,
                         Rng& rng, std::vector<uint32_t>* out) {
  const size_t count = std::min(m, det_size + sampler.remaining());
  const size_t protected_prefix = std::min(config.k - 1, det_size);
  size_t d = 0;
  size_t appended = 0;
  while (appended < count && d < protected_prefix) {
    out->push_back(det[d++]);
    ++appended;
  }
  // Chunked coin pre-draw: while neither side can empty within the slots
  // left, every slot tosses exactly one Bernoulli(r) coin, so the coins can
  // be drawn in one tight loop before the splice touches any list.
  constexpr size_t kCoinChunk = 64;
  bool coins[kCoinChunk];
  while (appended < count) {
    const size_t left = count - appended;
    if (det_size - d >= left && sampler.remaining() >= left) {
      const size_t chunk = std::min(left, kCoinChunk);
      for (size_t i = 0; i < chunk; ++i) coins[i] = rng.NextBernoulli(config.r);
      for (size_t i = 0; i < chunk; ++i) {
        out->push_back(coins[i] ? sampler.Next(rng) : det[d++]);
      }
      appended += chunk;
    } else {
      const bool from_pool =
          NextSlotFromPool(config.r, det_size - d, sampler.remaining(), rng);
      out->push_back(from_pool ? sampler.Next(rng) : det[d++]);
      ++appended;
    }
  }
  return count;
}

uint32_t ResolveRankLazy(const RankPromotionConfig& config,
                         const std::vector<uint32_t>& det,
                         const std::vector<uint32_t>& pool, size_t rank,
                         Rng& rng) {
  assert(rank >= 1 && rank <= det.size() + pool.size());
  const size_t protected_prefix = std::min(config.k - 1, det.size());
  if (rank <= protected_prefix) return det[rank - 1];
  if (pool.empty()) return det[rank - 1];

  size_t d = protected_prefix;  // det entries consumed
  size_t s = 0;                 // pool entries consumed
  for (size_t pos = protected_prefix + 1; pos <= rank; ++pos) {
    const bool from_pool =
        NextSlotFromPool(config.r, det.size() - d, pool.size() - s, rng);
    if (pos == rank) {
      // The s-th element of a uniformly shuffled pool is marginally uniform
      // over the pool, so a single-slot resolution may draw uniformly.
      return from_pool ? pool[rng.NextIndex(pool.size())] : det[d];
    }
    from_pool ? ++s : ++d;
  }
  assert(false && "unreachable");
  return 0;
}

Ranker::Ranker(RankPromotionConfig config)
    : Ranker(MakePromotionPolicy(config)) {}

Ranker::Ranker(std::shared_ptr<const StochasticRankingPolicy> policy)
    : policy_(std::move(policy)) {
  assert(policy_ != nullptr);
  assert(policy_->Valid());
}

const RankPromotionConfig& Ranker::config() const {
  const RankPromotionConfig* config = policy_->AsPromotion();
  assert(config != nullptr && "config() is promotion-family-only");
  return *config;
}

ShardView Ranker::GlobalView() const {
  return {det_.data(),   det_score_.data(), det_birth_.data(),
          det_.size(),   pool_.data(),      pool_.size()};
}

void Ranker::Update(const std::vector<double>& popularity,
                    const std::vector<uint8_t>& zero_awareness,
                    const std::vector<int64_t>& birth_step, Rng& rng) {
  const size_t n = popularity.size();
  assert(zero_awareness.size() == n);
  assert(birth_step.size() == n);

  det_.clear();
  pool_.clear();
  det_.reserve(n);
  for (uint32_t p = 0; p < n; ++p) {
    (policy_->PoolMembership(zero_awareness[p] != 0, rng) ? pool_ : det_)
        .push_back(p);
  }

  std::sort(det_.begin(), det_.end(), [&](uint32_t a, uint32_t b) {
    return RankOrderBefore(popularity[a], birth_step[a], a, popularity[b],
                           birth_step[b], b);
  });
  det_score_.clear();
  det_birth_.clear();
  det_score_.reserve(det_.size());
  det_birth_.reserve(det_.size());
  for (const uint32_t p : det_) {
    det_score_.push_back(popularity[p]);
    det_birth_.push_back(birth_step[p]);
  }
  // Per-epoch policy state (no Rng by contract, so promotion-family bit
  // compatibility with pre-policy seeds is unaffected).
  epoch_state_ = policy_->BuildEpochState(GlobalView());
}

std::vector<uint32_t> Ranker::MaterializeList(Rng& rng) const {
  if (policy_->AsPromotion() != nullptr) {
    return MaterializeWithPositions(rng, nullptr, nullptr);
  }
  return policy_->MaterializeReference(GlobalView(), rng);
}

std::vector<uint32_t> Ranker::MaterializeWithPositions(
    Rng& rng, std::vector<uint32_t>* det_positions,
    std::vector<uint32_t>* pool_positions) const {
  const RankPromotionConfig& config = this->config();
  std::vector<uint32_t> shuffled_pool = pool_;
  for (size_t i = shuffled_pool.size(); i > 1; --i) {
    std::swap(shuffled_pool[i - 1], shuffled_pool[rng.NextIndex(i)]);
  }
  if (det_positions) det_positions->resize(det_.size());
  if (pool_positions) pool_positions->resize(pool_.size());

  std::vector<uint32_t> out;
  out.reserve(n());
  const size_t protected_prefix = std::min(config.k - 1, det_.size());
  size_t d = 0;
  size_t s = 0;
  auto place = [&](bool from_pool) {
    const auto pos = static_cast<uint32_t>(out.size());
    if (from_pool) {
      if (pool_positions) (*pool_positions)[s] = pos;
      out.push_back(shuffled_pool[s++]);
    } else {
      if (det_positions) (*det_positions)[d] = pos;
      out.push_back(det_[d++]);
    }
  };
  while (d < protected_prefix) place(false);
  while (d < det_.size() || s < shuffled_pool.size()) {
    place(NextSlotFromPool(config.r, det_.size() - d,
                           shuffled_pool.size() - s, rng));
  }
  return out;
}

uint32_t Ranker::PageAtRank(size_t rank, Rng& rng) const {
  const RankPromotionConfig* config = policy_->AsPromotion();
  if (config != nullptr) {
    return ResolveRankLazy(*config, det_, pool_, rank, rng);
  }
  // Generic fallback: the marginal of rank j in a length-j prefix
  // realization equals the full-list marginal.
  const std::vector<uint32_t> prefix = TopM(rank, rng);
  assert(prefix.size() == rank);
  return prefix.back();
}

std::vector<uint32_t> Ranker::TopM(size_t m, Rng& rng) const {
  std::vector<uint32_t> out;
  out.reserve(std::min(m, n()));
  const ShardView view = GlobalView();
  PolicyScratch scratch;
  policy_->ServePrefix(&view, 1, epoch_state_.get(), scratch, m, rng, &out);
  return out;
}

}  // namespace randrank
