#ifndef RANDRANK_CORE_RANKING_POLICY_H_
#define RANDRANK_CORE_RANKING_POLICY_H_

#include <cstddef>
#include <string>

namespace randrank {

/// Which pages are eligible for rank promotion (paper Section 4).
enum class PromotionRule {
  /// No promotion: strict deterministic ranking by popularity.
  kNone,
  /// Every page enters the promotion pool independently with probability r.
  kUniform,
  /// Exactly the pages whose awareness among monitored users is zero.
  kSelective,
};

/// Configuration of the randomized rank-promotion scheme (Section 4).
///
/// The merge procedure: the top k-1 entries of the deterministic list Ld are
/// protected; each later position takes the next element of the shuffled pool
/// Lp with probability r, otherwise the next element of Ld, until one list
/// empties.
struct RankPromotionConfig {
  PromotionRule rule = PromotionRule::kNone;
  /// Degree of randomization r in [0, 1].
  double r = 0.0;
  /// Starting point k >= 1. k = 2 preserves the "feeling lucky" top result.
  size_t k = 1;

  /// Strict deterministic ranking.
  static RankPromotionConfig None();
  /// Uniform rule with the given r and k.
  static RankPromotionConfig Uniform(double r, size_t k = 1);
  /// Selective rule with the given r and k.
  static RankPromotionConfig Selective(double r, size_t k = 1);
  /// The paper's recommended recipe (Section 6.4): selective promotion,
  /// r = 0.1, k in {1, 2}.
  static RankPromotionConfig Recommended(size_t k = 1);
  /// The live study's variant (Appendix A): new pages inserted in random
  /// order immediately below `position - 1`; equals Selective(r=1, k=position).
  static RankPromotionConfig FixedPosition(size_t position = 21);

  /// True when parameters are in range and consistent.
  bool Valid() const;

  /// Human-readable label like "selective(r=0.10,k=1)" for tables. Stable:
  /// bench JSONL and tools/check_bench.py key perf points by it, and
  /// ParseLabel() inverts it.
  std::string Label() const;

  /// Inverse of Label(): parses "none", "uniform(r=F,k=N)", or
  /// "selective(r=F,k=N)" into `out` and returns true; false (leaving `out`
  /// untouched) on any other string or out-of-range parameters. Round-trips
  /// Label() exactly for r representable at two decimals.
  static bool ParseLabel(const std::string& label, RankPromotionConfig* out);
};

}  // namespace randrank

#endif  // RANDRANK_CORE_RANKING_POLICY_H_
