#include "serve/sharded_rank_server.h"

#include <algorithm>
#include <cassert>

#include "serve/epoch_prefix_cache.h"

namespace randrank {

ShardedRankServer::ShardedRankServer(RankPromotionConfig config,
                                     size_t num_pages, ServeOptions options)
    : config_(config),
      n_(num_pages),
      opts_(options),
      writer_rng_(Rng::ForStream(options.seed, 0)),
      visit_counts_(num_pages, 0) {
  assert(config_.Valid());
  const size_t shards = std::max<size_t>(1, opts_.shards);
  shard_pages_.resize(std::min(shards, std::max<size_t>(1, num_pages)));
  for (uint32_t p = 0; p < num_pages; ++p) {
    shard_pages_[p % shard_pages_.size()].push_back(p);
  }
}

void ShardedRankServer::Update(const std::vector<double>& popularity,
                               const std::vector<uint8_t>& zero_awareness,
                               const std::vector<int64_t>& birth_step,
                               ThreadPool* pool) {
  assert(popularity.size() == n_);
  assert(zero_awareness.size() == n_);
  assert(birth_step.size() == n_);

  const uint64_t epoch = epoch_.load(std::memory_order_relaxed) + 1;
  auto view = std::make_shared<ServingView>();
  view->epoch = epoch;
  view->shards.resize(shard_pages_.size());

  // Each shard build gets a forked rng so parallel builds stay independent
  // and the build is deterministic given the writer stream.
  std::vector<Rng> build_rngs;
  build_rngs.reserve(shard_pages_.size());
  for (size_t s = 0; s < shard_pages_.size(); ++s) {
    build_rngs.push_back(writer_rng_.Fork());
  }

  auto build_shard = [&](size_t s) {
    view->shards[s] =
        RankSnapshot::Build(config_, epoch, shard_pages_[s], popularity,
                            zero_awareness, birth_step, build_rngs[s]);
  };
  if (pool != nullptr && shard_pages_.size() > 1) {
    ParallelFor(*pool, shard_pages_.size(), build_shard);
  } else {
    for (size_t s = 0; s < shard_pages_.size(); ++s) build_shard(s);
  }

  if (opts_.enable_prefix_cache) {
    view->cache = EpochPrefixCache::Build(*view);
  }

  store_.Publish(std::move(view));
  epoch_.store(epoch, std::memory_order_release);
}

ShardedRankServer::Context ShardedRankServer::CreateContext() const {
  Context ctx;
  ctx.handle_ = SnapshotHandle<ServingView>(&store_);
  // Stream 0 belongs to the writer; contexts take 1, 2, ...
  const uint64_t stream =
      1 + context_seq_.fetch_add(1, std::memory_order_relaxed);
  ctx.rng_ = Rng::ForStream(opts_.seed, stream);
  ctx.visit_batch_.reserve(opts_.feedback_batch);
  const size_t shards = shard_pages_.size();
  ctx.snaps_.resize(shards);
  ctx.det_cursor_.resize(shards);
  ctx.samplers_.resize(shards);
  return ctx;
}

size_t ShardedRankServer::ServeTopM(Context& ctx, size_t m,
                                    std::vector<uint32_t>* out) const {
  out->clear();
  const ServingView* view = ctx.handle_.Get();
  if (view == nullptr || m == 0) return 0;
  return ServeOne(ctx, *view, m, out);
}

size_t ShardedRankServer::ServeBatch(Context& ctx, QueryBatch* batch) const {
  for (auto& result : batch->results) result.clear();
  const ServingView* view = ctx.handle_.Get();
  if (view == nullptr || batch->m == 0) return 0;
  size_t total = 0;
  for (auto& result : batch->results) {
    total += ServeOne(ctx, *view, batch->m, &result);
  }
  return total;
}

size_t ShardedRankServer::ServeOne(Context& ctx, const ServingView& view,
                                   size_t m, std::vector<uint32_t>* out) const {
  const EpochPrefixCache* cache = view.cache.get();
  if (cache == nullptr) return ServeUncached(ctx, view, m, out);
  // Cached path: the cross-shard deterministic merge and the global pool
  // were materialized once when this epoch was published; a query is the
  // protected-prefix copy plus the O(m) randomized splice.
  ctx.pool_sampler_.Reset(cache->pool.data(), cache->pool.size());
  return MergePrefixCached(config_, cache->det.data(), cache->det.size(),
                           ctx.pool_sampler_, m, ctx.rng_, out);
}

size_t ShardedRankServer::ServeUncached(Context& ctx, const ServingView& view,
                                        size_t m,
                                        std::vector<uint32_t>* out) const {
  const size_t shards = view.shards.size();
  size_t det_remaining = 0;
  size_t pool_remaining = 0;
  for (size_t s = 0; s < shards; ++s) {
    const RankSnapshot* snap = view.shards[s].get();
    ctx.snaps_[s] = snap;
    ctx.det_cursor_[s] = 0;
    ctx.samplers_[s].Reset(snap->pool.data(), snap->pool.size());
    det_remaining += snap->det.size();
    pool_remaining += snap->pool.size();
  }

  const size_t count = std::min(m, det_remaining + pool_remaining);
  Rng& rng = ctx.rng_;

  // Next element of the global deterministic order: the best head among the
  // shards' sorted lists under the global key (BestDetHead — shared with
  // the epoch cache's merge). Linear scan over S; S is small on purpose.
  auto next_det = [&]() -> uint32_t {
    const size_t best =
        BestDetHead(ctx.snaps_.data(), ctx.det_cursor_.data(), shards);
    assert(best < shards);
    --det_remaining;
    return ctx.snaps_[best]->det[ctx.det_cursor_[best]++];
  };

  const size_t protected_prefix = std::min(config_.k - 1, det_remaining);
  while (out->size() < count && out->size() < protected_prefix) {
    out->push_back(next_det());
  }
  while (out->size() < count) {
    if (NextSlotFromPool(config_.r, det_remaining, pool_remaining, rng)) {
      // Uniform draw from the remaining global pool: pick a shard weighted
      // by its remaining pool mass, then draw without replacement inside it.
      uint64_t t = rng.NextIndex(pool_remaining);
      size_t s = 0;
      while (t >= ctx.samplers_[s].remaining()) {
        t -= ctx.samplers_[s].remaining();
        ++s;
      }
      out->push_back(ctx.samplers_[s].Next(rng));
      --pool_remaining;
    } else {
      out->push_back(next_det());
    }
  }
  return count;
}

void ShardedRankServer::RecordVisit(Context& ctx, uint32_t page) {
  assert(page < n_);
  ctx.visit_batch_.push_back(page);
  if (ctx.visit_batch_.size() >= opts_.feedback_batch) FlushFeedback(ctx);
}

void ShardedRankServer::FlushFeedback(Context& ctx) {
  if (ctx.visit_batch_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(feedback_mutex_);
    for (const uint32_t page : ctx.visit_batch_) ++visit_counts_[page];
  }
  total_visits_.fetch_add(ctx.visit_batch_.size(), std::memory_order_relaxed);
  ctx.visit_batch_.clear();
}

std::vector<uint64_t> ShardedRankServer::DrainVisits() {
  std::vector<uint64_t> drained(n_, 0);
  std::lock_guard<std::mutex> lock(feedback_mutex_);
  visit_counts_.swap(drained);
  return drained;
}

}  // namespace randrank
