#include "serve/sharded_rank_server.h"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "core/policy/promotion_policy.h"
#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/epoch_prefix_cache.h"

namespace randrank {

namespace {

/// Family slug of a policy label: the label up to its parameter list —
/// "selective(r=0.10,k=2)" -> "selective". The histogram-name split the
/// check_bench.py policy_family() convention also uses.
std::string FamilySlug(const std::string& label) {
  return label.substr(0, label.find('('));
}

double MicrosBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

ShardedRankServer::ShardedRankServer(
    std::shared_ptr<const StochasticRankingPolicy> policy, size_t num_pages,
    ServeOptions options)
    : policy_(std::move(policy)),
      initial_policy_(policy_),
      n_(num_pages),
      opts_(options),
      writer_rng_(Rng::ForStream(options.seed, 0)),
      visit_counts_(num_pages, 0) {
  assert(policy_ != nullptr && policy_->Valid());
  const size_t shards = std::max<size_t>(1, opts_.shards);
  shard_pages_.resize(std::min(shards, std::max<size_t>(1, num_pages)));
  for (uint32_t p = 0; p < num_pages; ++p) {
    shard_pages_[p % shard_pages_.size()].push_back(p);
  }
  if (opts_.metrics != nullptr) {
    // Failure-path endpoints are resolved (and the gauges zeroed) up front,
    // so a scrape sees them before any publish has failed.
    publish_failures_ctr_ =
        &opts_.metrics->GetCounter(opts_.obs_prefix + "/publish_failures");
    degraded_gauge_ = &opts_.metrics->GetGauge(opts_.obs_prefix + "/degraded");
    stale_epochs_gauge_ =
        &opts_.metrics->GetGauge(opts_.obs_prefix + "/epochs_since_publish");
    degraded_gauge_->Set(0.0);
    stale_epochs_gauge_->Set(0.0);
  }
}

ShardedRankServer::ShardedRankServer(RankPromotionConfig config,
                                     size_t num_pages, ServeOptions options)
    : ShardedRankServer(MakePromotionPolicy(config), num_pages, options) {}

std::shared_ptr<const StochasticRankingPolicy> ShardedRankServer::policy()
    const {
  const std::shared_ptr<const ServingView> view = store_.Load(nullptr);
  return view != nullptr ? view->policy : initial_policy_;
}

const RankPromotionConfig& ShardedRankServer::config() const {
  const RankPromotionConfig* config = policy()->AsPromotion();
  assert(config != nullptr && "config() is promotion-family-only");
  return *config;
}

bool ShardedRankServer::PrefixCacheActive() const {
  const std::shared_ptr<const ServingView> view = store_.Load(nullptr);
  return view != nullptr && view->cache != nullptr;
}

bool ShardedRankServer::Update(const std::vector<double>& popularity,
                               const std::vector<uint8_t>& zero_awareness,
                               const std::vector<int64_t>& birth_step,
                               ThreadPool* pool) {
  return Update(popularity, zero_awareness, birth_step, nullptr, pool);
}

bool ShardedRankServer::Update(
    const std::vector<double>& popularity,
    const std::vector<uint8_t>& zero_awareness,
    const std::vector<int64_t>& birth_step,
    std::shared_ptr<const StochasticRankingPolicy> new_policy,
    ThreadPool* pool) {
  assert(popularity.size() == n_);
  assert(zero_awareness.size() == n_);
  assert(birth_step.size() == n_);
  using Clock = std::chrono::steady_clock;
  const bool tracing = opts_.trace != nullptr;
  const Clock::time_point publish_start = Clock::now();
  const bool swapping = new_policy != nullptr;
  double swap_us = 0.0;
  // Rollback anchor: if any build phase below throws, the pending policy
  // reverts to this, nothing is published, and the previous epoch keeps
  // serving — the publish is transactional.
  const std::shared_ptr<const StochasticRankingPolicy> prev_policy = policy_;
  if (swapping) {
    // Hot-swap: the new policy ranks this epoch and every later one. It is
    // only ever observed through the view published below, so in-flight
    // queries pinned to the previous epoch keep serving under the previous
    // policy — the swap is atomic at epoch granularity.
    assert(new_policy->Valid());
    const Clock::time_point t0 = Clock::now();
    policy_ = std::move(new_policy);
    swap_us = MicrosBetween(t0, Clock::now());
  }

  const uint64_t epoch = epoch_.load(std::memory_order_relaxed) + 1;
  try {
    auto view = std::make_shared<ServingView>();
    view->epoch = epoch;
    view->policy = policy_;
    view->shards.resize(shard_pages_.size());

    // Fault site: abort (kFail) or slow (kDelay) the shard-build phase.
    fault::CheckAbortable(fault::kPublishShards,
                          fault::Hash(fault::kPublishShards), epoch);

    // Each shard build gets a forked rng so parallel builds stay independent
    // and the build is deterministic given the writer stream.
    std::vector<Rng> build_rngs;
    build_rngs.reserve(shard_pages_.size());
    for (size_t s = 0; s < shard_pages_.size(); ++s) {
      build_rngs.push_back(writer_rng_.Fork());
    }

    auto build_shard = [&](size_t s) {
      // Per-shard epoch state is skipped: server queries consume only the
      // EpochPrefixCache's global state (cached path) or none (per-query
      // path), never a shard-local one.
      view->shards[s] = RankSnapshot::Build(
          policy_, epoch, shard_pages_[s], popularity, zero_awareness,
          birth_step, build_rngs[s], /*build_epoch_state=*/false);
    };
    const Clock::time_point shards_start = Clock::now();
    if (pool != nullptr && shard_pages_.size() > 1) {
      ParallelFor(*pool, shard_pages_.size(), build_shard);
    } else {
      for (size_t s = 0; s < shard_pages_.size(); ++s) build_shard(s);
    }
    const Clock::time_point shards_done = Clock::now();

    // The cache participates only when the policy declares the epoch_state
    // capability: the materialized global merge order plus whatever the
    // policy's BuildEpochState derives from it (promotion's splice inputs,
    // Plackett-Luce's alias table, epsilon-tail's cached head). Families
    // without it fall back to the per-query sharded path. Carries the
    // publish.merge / publish.epoch_state fault sites internally.
    EpochPrefixCache::BuildPhaseTimings cache_timings;
    if (opts_.enable_prefix_cache && policy_->Capabilities().epoch_state) {
      view->cache =
          EpochPrefixCache::Build(*view, tracing ? &cache_timings : nullptr);
    }
    const bool cached = view->cache != nullptr;

    view->obs = BuildObsHooks(cached);
    // Fault site: the last abort point before the irreversible RCU swap —
    // past here the epoch is published and cannot roll back by design.
    fault::CheckAbortable(fault::kPublishRcu, fault::Hash(fault::kPublishRcu),
                          epoch);
    const Clock::time_point rcu_start = Clock::now();
    store_.Publish(std::move(view));
    epoch_.store(epoch, std::memory_order_release);
    const Clock::time_point publish_done = Clock::now();

    if (failed_since_success_.load(std::memory_order_relaxed) != 0) {
      // Recovery: the first clean publish after failures clears the
      // degraded state (queries are fresh again).
      failed_since_success_.store(0, std::memory_order_relaxed);
      if (degraded_gauge_ != nullptr) {
        degraded_gauge_->Set(0.0);
        stale_epochs_gauge_->Set(0.0);
      }
    }
    if (opts_.metrics != nullptr) {
      const uint64_t publish_ns = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(publish_done -
                                                               publish_start)
              .count());
      opts_.metrics->GetHistogram(opts_.obs_prefix + "/publish_ns")
          .Record(publish_ns);
      opts_.metrics->GetCounter(opts_.obs_prefix + "/publishes").Add();
      opts_.metrics->GetGauge(opts_.obs_prefix + "/epoch")
          .Set(static_cast<double>(epoch));
    }
    if (tracing) {
      // Per-phase publish spans, one line each, always emitted (publishes are
      // rare): shard re-sort, merge + BuildEpochState (zero-duration when the
      // cache is off), the policy swap when one rode this publish, the RCU
      // pointer swap, and the whole publish as the parent span.
      const auto e = static_cast<double>(epoch);
      const auto s = static_cast<double>(shard_pages_.size());
      const double sw = swapping ? 1.0 : 0.0;
      obs::TraceLog& trace = *opts_.trace;
      trace.EmitSpan("publish/shards", MicrosBetween(shards_start, shards_done),
                     {{"epoch", e}, {"shards", s}});
      if (cached) {
        trace.EmitSpan("publish/merge", cache_timings.merge_us,
                       {{"epoch", e}, {"shards", s}});
        trace.EmitSpan("publish/epoch_state", cache_timings.epoch_state_us,
                       {{"epoch", e}});
      }
      if (swapping) {
        trace.EmitSpan("publish/policy_swap", swap_us, {{"epoch", e}},
                       {{"family", FamilySlug(policy_->Label())}});
      }
      trace.EmitSpan("publish/rcu_publish",
                     MicrosBetween(rcu_start, publish_done), {{"epoch", e}});
      trace.EmitSpan("publish/total",
                     MicrosBetween(publish_start, publish_done),
                     {{"epoch", e},
                      {"shards", s},
                      {"swap", sw},
                      {"cached", cached ? 1.0 : 0.0}},
                     {{"family", FamilySlug(policy_->Label())}});
    }
    return true;
  } catch (const std::exception& ex) {
    // Transactional rollback: nothing was published (store_ and epoch_ are
    // only touched after the last abortable site), so readers keep serving
    // the previous snapshot bit-identically. A policy swap that rode this
    // failed publish is undone too — it never became observable.
    if (swapping) policy_ = prev_policy;
    publish_failures_.fetch_add(1, std::memory_order_relaxed);
    const uint64_t stale =
        failed_since_success_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (opts_.metrics != nullptr) {
      publish_failures_ctr_->Add();
      degraded_gauge_->Set(1.0);
      stale_epochs_gauge_->Set(static_cast<double>(stale));
    }
    if (tracing) {
      opts_.trace->EmitSpan(
          "publish/aborted", MicrosBetween(publish_start, Clock::now()),
          {{"epoch", static_cast<double>(epoch)},
           {"stale_epochs", static_cast<double>(stale)}},
          {{"reason", ex.what()}});
    }
    return false;
  }
}

std::shared_ptr<const ServeObsHooks> ShardedRankServer::BuildObsHooks(
    bool cached) const {
  if (opts_.metrics == nullptr) return nullptr;
  auto hooks = std::make_shared<ServeObsHooks>();
  hooks->cached = cached;
  hooks->fanout = static_cast<double>(shard_pages_.size());
  hooks->family = FamilySlug(policy_->Label());
  hooks->latency = &opts_.metrics->GetHistogram(
      opts_.obs_prefix + "/latency_ns/" + (cached ? "cached/" : "sharded/") +
      hooks->family);
  hooks->queries = &opts_.metrics->GetCounter(opts_.obs_prefix + "/queries");
  hooks->slots = &opts_.metrics->GetCounter(opts_.obs_prefix + "/slots");
  if (opts_.trace != nullptr && opts_.trace->sample_every() > 0) {
    hooks->trace = opts_.trace;
    hooks->sample_every = opts_.trace->sample_every();
  }
  return hooks;
}

ShardedRankServer::Context ShardedRankServer::CreateContext() const {
  Context ctx;
  ctx.handle_ = SnapshotHandle<ServingView>(&store_);
  // Stream 0 belongs to the writer; contexts take 1, 2, ...
  const uint64_t stream =
      1 + context_seq_.fetch_add(1, std::memory_order_relaxed);
  ctx.rng_ = Rng::ForStream(opts_.seed, stream);
  ctx.visit_batch_.reserve(opts_.feedback_batch);
  const size_t shards = shard_pages_.size();
  ctx.views_.reserve(shards);
  ctx.scratch_.samplers.reserve(shards);
  ctx.scratch_.cursors.reserve(shards);
  return ctx;
}

size_t ShardedRankServer::ServeTopM(Context& ctx, size_t m,
                                    std::vector<uint32_t>* out) const {
  out->clear();
  const ServingView* view = ctx.handle_.Get();
  if (view == nullptr || m == 0) return 0;
  return ServeOne(ctx, *view, m, out);
}

size_t ShardedRankServer::ServeBatch(Context& ctx, QueryBatch* batch) const {
  for (auto& result : batch->results) result.clear();
  const ServingView* view = ctx.handle_.Get();
  if (view == nullptr || batch->m == 0) return 0;
  const ServeObsHooks* hooks = view->obs.get();
  const size_t queries = batch->results.size();
  if (hooks == nullptr || queries == 0) {
    size_t total = 0;
    for (auto& result : batch->results) {
      total += ServeUninstrumented(ctx, *view, batch->m, &result);
    }
    return total;
  }

  // Batch-granular stamping: two clock reads and one histogram write cover
  // the whole batch, booking each query's amortized share (batch_ns /
  // queries). Within one batch of identical-m queries the per-query spread
  // is below fast-clock resolution anyway; the latency tail that matters —
  // cross-batch variation from cache misses, epoch swaps, load — survives
  // intact, and the per-query instrumentation cost drops to ~batch_size-th
  // of ServeOne's (the serve/obs ablation's <= 5% QPS gate is measured on
  // this path at batch=16).
  const uint64_t t0 = obs::FastNowNs();
  size_t total = 0;
  for (auto& result : batch->results) {
    total += ServeUninstrumented(ctx, *view, batch->m, &result);
  }
  const uint64_t batch_ns = obs::FastNowNs() - t0;
  hooks->latency->RecordN(batch_ns / queries, queries);
  hooks->queries->Add(queries);
  hooks->slots->Add(total);
  if (hooks->trace != nullptr && ctx.obs_seq_++ % hooks->sample_every == 0) {
    hooks->trace->EmitSpan("serve/batch",
                           static_cast<double>(batch_ns) * 1e-3,
                           {{"epoch", static_cast<double>(view->epoch)},
                            {"m", static_cast<double>(batch->m)},
                            {"queries", static_cast<double>(queries)},
                            {"served", static_cast<double>(total)},
                            {"cached", hooks->cached ? 1.0 : 0.0},
                            {"fanout", hooks->fanout}},
                           {{"family", hooks->family}});
  }
  return total;
}

size_t ShardedRankServer::ServeOne(Context& ctx, const ServingView& view,
                                   size_t m, std::vector<uint32_t>* out) const {
  const ServeObsHooks* hooks = view.obs.get();
  if (hooks == nullptr) return ServeUninstrumented(ctx, view, m, out);

  // True per-query service time: stamped around the realization itself, so
  // the histogram measures each query — not batch wall time averaged — at a
  // fixed few-ns cost (two fast-clock reads + one relaxed fetch_add).
  const uint64_t t0 = obs::FastNowNs();
  const size_t served = ServeUninstrumented(ctx, view, m, out);
  const uint64_t service_ns = obs::FastNowNs() - t0;
  hooks->latency->Record(service_ns);
  hooks->queries->Add();
  hooks->slots->Add(served);
  if (hooks->trace != nullptr && ctx.obs_seq_++ % hooks->sample_every == 0) {
    hooks->trace->EmitSpan("serve/query",
                           static_cast<double>(service_ns) * 1e-3,
                           {{"epoch", static_cast<double>(view.epoch)},
                            {"m", static_cast<double>(m)},
                            {"served", static_cast<double>(served)},
                            {"cached", hooks->cached ? 1.0 : 0.0},
                            {"fanout", hooks->fanout}},
                           {{"family", hooks->family}});
  }
  return served;
}

size_t ShardedRankServer::ServeUninstrumented(
    Context& ctx, const ServingView& view, size_t m,
    std::vector<uint32_t>* out) const {
  // Hot-path fault site, delay-only (slow-shard simulation) — queries are
  // never failed here, so a chaos run's answers stay correct. Disabled cost
  // is one relaxed load + branch; an armed-but-inert injector adds a single
  // mask test. Both are priced by bench/perf_fault and gated <= 1% in
  // check_bench.py.
  {
    static constexpr uint64_t kHash = fault::Hash(fault::kServeQuery);
    fault::Decision decision;
    if (fault::Check(fault::kServeQuery, kHash, view.epoch, &decision)) {
      fault::ApplyDelay(decision);
    }
  }
  // Dispatch through the policy the pinned view was built with — not any
  // server-level member — so a concurrent hot-swap Update can never pair a
  // query with a policy that mismatches its ranking state.
  const StochasticRankingPolicy& policy = *view.policy;
  const EpochPrefixCache* cache = view.cache.get();
  if (cache != nullptr) {
    // Cached path: the cross-shard deterministic merge, the global pool,
    // and the policy's per-epoch state were materialized once when this
    // epoch was published; the policy realizes against the single
    // pre-merged global view (promotion: protected-prefix copy + O(m)
    // splice; Plackett-Luce: O(m) expected alias draws; epsilon-tail:
    // head memcpy + explored slots only).
    const ShardView global = cache->AsView();
    return policy.ServePrefix(&global, 1, cache->policy_state.get(),
                              ctx.scratch_, m, ctx.rng_, out);
  }
  // Per-query path: the policy realizes directly over the shard views,
  // with no per-epoch state.
  const size_t shards = view.shards.size();
  ctx.views_.resize(shards);
  for (size_t s = 0; s < shards; ++s) ctx.views_[s] = view.shards[s]->AsView();
  return policy.ServePrefix(ctx.views_.data(), shards, nullptr, ctx.scratch_,
                            m, ctx.rng_, out);
}

void ShardedRankServer::RecordVisit(Context& ctx, uint32_t page) {
  assert(page < n_);
  ctx.visit_batch_.push_back(page);
  if (ctx.visit_batch_.size() >= opts_.feedback_batch) FlushFeedback(ctx);
}

void ShardedRankServer::FlushFeedback(Context& ctx) {
  if (ctx.visit_batch_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(feedback_mutex_);
    for (const uint32_t page : ctx.visit_batch_) ++visit_counts_[page];
  }
  total_visits_.fetch_add(ctx.visit_batch_.size(), std::memory_order_relaxed);
  ctx.visit_batch_.clear();
}

std::vector<uint64_t> ShardedRankServer::DrainVisits() {
  std::vector<uint64_t> drained(n_, 0);
  std::lock_guard<std::mutex> lock(feedback_mutex_);
  visit_counts_.swap(drained);
  return drained;
}

}  // namespace randrank
