#include "serve/sharded_rank_server.h"

#include <algorithm>
#include <cassert>

#include "core/policy/promotion_policy.h"
#include "serve/epoch_prefix_cache.h"

namespace randrank {

ShardedRankServer::ShardedRankServer(
    std::shared_ptr<const StochasticRankingPolicy> policy, size_t num_pages,
    ServeOptions options)
    : policy_(std::move(policy)),
      initial_policy_(policy_),
      n_(num_pages),
      opts_(options),
      writer_rng_(Rng::ForStream(options.seed, 0)),
      visit_counts_(num_pages, 0) {
  assert(policy_ != nullptr && policy_->Valid());
  const size_t shards = std::max<size_t>(1, opts_.shards);
  shard_pages_.resize(std::min(shards, std::max<size_t>(1, num_pages)));
  for (uint32_t p = 0; p < num_pages; ++p) {
    shard_pages_[p % shard_pages_.size()].push_back(p);
  }
}

ShardedRankServer::ShardedRankServer(RankPromotionConfig config,
                                     size_t num_pages, ServeOptions options)
    : ShardedRankServer(MakePromotionPolicy(config), num_pages, options) {}

std::shared_ptr<const StochasticRankingPolicy> ShardedRankServer::policy()
    const {
  const std::shared_ptr<const ServingView> view = store_.Load(nullptr);
  return view != nullptr ? view->policy : initial_policy_;
}

const RankPromotionConfig& ShardedRankServer::config() const {
  const RankPromotionConfig* config = policy()->AsPromotion();
  assert(config != nullptr && "config() is promotion-family-only");
  return *config;
}

bool ShardedRankServer::PrefixCacheActive() const {
  const std::shared_ptr<const ServingView> view = store_.Load(nullptr);
  return view != nullptr && view->cache != nullptr;
}

void ShardedRankServer::Update(const std::vector<double>& popularity,
                               const std::vector<uint8_t>& zero_awareness,
                               const std::vector<int64_t>& birth_step,
                               ThreadPool* pool) {
  Update(popularity, zero_awareness, birth_step, nullptr, pool);
}

void ShardedRankServer::Update(
    const std::vector<double>& popularity,
    const std::vector<uint8_t>& zero_awareness,
    const std::vector<int64_t>& birth_step,
    std::shared_ptr<const StochasticRankingPolicy> new_policy,
    ThreadPool* pool) {
  assert(popularity.size() == n_);
  assert(zero_awareness.size() == n_);
  assert(birth_step.size() == n_);
  if (new_policy != nullptr) {
    // Hot-swap: the new policy ranks this epoch and every later one. It is
    // only ever observed through the view published below, so in-flight
    // queries pinned to the previous epoch keep serving under the previous
    // policy — the swap is atomic at epoch granularity.
    assert(new_policy->Valid());
    policy_ = std::move(new_policy);
  }

  const uint64_t epoch = epoch_.load(std::memory_order_relaxed) + 1;
  auto view = std::make_shared<ServingView>();
  view->epoch = epoch;
  view->policy = policy_;
  view->shards.resize(shard_pages_.size());

  // Each shard build gets a forked rng so parallel builds stay independent
  // and the build is deterministic given the writer stream.
  std::vector<Rng> build_rngs;
  build_rngs.reserve(shard_pages_.size());
  for (size_t s = 0; s < shard_pages_.size(); ++s) {
    build_rngs.push_back(writer_rng_.Fork());
  }

  auto build_shard = [&](size_t s) {
    // Per-shard epoch state is skipped: server queries consume only the
    // EpochPrefixCache's global state (cached path) or none (per-query
    // path), never a shard-local one.
    view->shards[s] = RankSnapshot::Build(
        policy_, epoch, shard_pages_[s], popularity, zero_awareness,
        birth_step, build_rngs[s], /*build_epoch_state=*/false);
  };
  if (pool != nullptr && shard_pages_.size() > 1) {
    ParallelFor(*pool, shard_pages_.size(), build_shard);
  } else {
    for (size_t s = 0; s < shard_pages_.size(); ++s) build_shard(s);
  }

  // The cache participates only when the policy declares the epoch_state
  // capability: the materialized global merge order plus whatever the
  // policy's BuildEpochState derives from it (promotion's splice inputs,
  // Plackett-Luce's alias table, epsilon-tail's cached head). Families
  // without it fall back to the per-query sharded path.
  if (opts_.enable_prefix_cache && policy_->Capabilities().epoch_state) {
    view->cache = EpochPrefixCache::Build(*view);
  }

  store_.Publish(std::move(view));
  epoch_.store(epoch, std::memory_order_release);
}

ShardedRankServer::Context ShardedRankServer::CreateContext() const {
  Context ctx;
  ctx.handle_ = SnapshotHandle<ServingView>(&store_);
  // Stream 0 belongs to the writer; contexts take 1, 2, ...
  const uint64_t stream =
      1 + context_seq_.fetch_add(1, std::memory_order_relaxed);
  ctx.rng_ = Rng::ForStream(opts_.seed, stream);
  ctx.visit_batch_.reserve(opts_.feedback_batch);
  const size_t shards = shard_pages_.size();
  ctx.views_.reserve(shards);
  ctx.scratch_.samplers.reserve(shards);
  ctx.scratch_.cursors.reserve(shards);
  return ctx;
}

size_t ShardedRankServer::ServeTopM(Context& ctx, size_t m,
                                    std::vector<uint32_t>* out) const {
  out->clear();
  const ServingView* view = ctx.handle_.Get();
  if (view == nullptr || m == 0) return 0;
  return ServeOne(ctx, *view, m, out);
}

size_t ShardedRankServer::ServeBatch(Context& ctx, QueryBatch* batch) const {
  for (auto& result : batch->results) result.clear();
  const ServingView* view = ctx.handle_.Get();
  if (view == nullptr || batch->m == 0) return 0;
  size_t total = 0;
  for (auto& result : batch->results) {
    total += ServeOne(ctx, *view, batch->m, &result);
  }
  return total;
}

size_t ShardedRankServer::ServeOne(Context& ctx, const ServingView& view,
                                   size_t m, std::vector<uint32_t>* out) const {
  // Dispatch through the policy the pinned view was built with — not any
  // server-level member — so a concurrent hot-swap Update can never pair a
  // query with a policy that mismatches its ranking state.
  const StochasticRankingPolicy& policy = *view.policy;
  const EpochPrefixCache* cache = view.cache.get();
  if (cache != nullptr) {
    // Cached path: the cross-shard deterministic merge, the global pool,
    // and the policy's per-epoch state were materialized once when this
    // epoch was published; the policy realizes against the single
    // pre-merged global view (promotion: protected-prefix copy + O(m)
    // splice; Plackett-Luce: O(m) expected alias draws; epsilon-tail:
    // head memcpy + explored slots only).
    const ShardView global = cache->AsView();
    return policy.ServePrefix(&global, 1, cache->policy_state.get(),
                              ctx.scratch_, m, ctx.rng_, out);
  }
  // Per-query path: the policy realizes directly over the shard views,
  // with no per-epoch state.
  const size_t shards = view.shards.size();
  ctx.views_.resize(shards);
  for (size_t s = 0; s < shards; ++s) ctx.views_[s] = view.shards[s]->AsView();
  return policy.ServePrefix(ctx.views_.data(), shards, nullptr, ctx.scratch_,
                            m, ctx.rng_, out);
}

void ShardedRankServer::RecordVisit(Context& ctx, uint32_t page) {
  assert(page < n_);
  ctx.visit_batch_.push_back(page);
  if (ctx.visit_batch_.size() >= opts_.feedback_batch) FlushFeedback(ctx);
}

void ShardedRankServer::FlushFeedback(Context& ctx) {
  if (ctx.visit_batch_.empty()) return;
  {
    std::lock_guard<std::mutex> lock(feedback_mutex_);
    for (const uint32_t page : ctx.visit_batch_) ++visit_counts_[page];
  }
  total_visits_.fetch_add(ctx.visit_batch_.size(), std::memory_order_relaxed);
  ctx.visit_batch_.clear();
}

std::vector<uint64_t> ShardedRankServer::DrainVisits() {
  std::vector<uint64_t> drained(n_, 0);
  std::lock_guard<std::mutex> lock(feedback_mutex_);
  visit_counts_.swap(drained);
  return drained;
}

}  // namespace randrank
