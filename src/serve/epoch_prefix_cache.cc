#include "serve/epoch_prefix_cache.h"

#include <cassert>
#include <chrono>

#include "core/rank_merge.h"
#include "fault/fault.h"

namespace randrank {

std::shared_ptr<const EpochPrefixCache> EpochPrefixCache::Build(
    const ServingView& view, BuildPhaseTimings* timings) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point build_start =
      timings != nullptr ? Clock::now() : Clock::time_point();
  // Fault site: a kFail rule here aborts the merge phase (the caller's
  // transactional publish rolls back); kDelay simulates a slow merge.
  fault::CheckAbortable(fault::kPublishMerge, fault::Hash(fault::kPublishMerge),
                        view.epoch);
  auto cache = std::make_shared<EpochPrefixCache>();
  cache->epoch = view.epoch;

  const size_t shards = view.shards.size();
  size_t det_total = 0;
  size_t pool_total = 0;
  for (const auto& shard : view.shards) {
    det_total += shard->det.size();
    pool_total += shard->pool.size();
  }
  cache->det.reserve(det_total);
  cache->det_score.reserve(det_total);
  cache->pool.reserve(pool_total);

  // S-way merge on the global sort key — BestDetHead is the same merge step
  // the uncached per-query path takes, run here once to completion. Linear
  // scan over S per element; S is small and this runs off the serving path.
  std::vector<const RankSnapshot*> snaps;
  snaps.reserve(shards);
  for (const auto& shard : view.shards) snaps.push_back(shard.get());
  std::vector<size_t> cursor(shards, 0);
  for (size_t produced = 0; produced < det_total; ++produced) {
    const size_t best = BestDetHead(snaps.data(), cursor.data(), shards);
    assert(best < shards);
    cache->det.push_back(snaps[best]->det[cursor[best]]);
    cache->det_score.push_back(snaps[best]->det_score[cursor[best]]);
    ++cursor[best];
  }

  for (const auto& shard : view.shards) {
    cache->pool.insert(cache->pool.end(), shard->pool.begin(),
                       shard->pool.end());
  }

  const Clock::time_point merge_done =
      timings != nullptr ? Clock::now() : Clock::time_point();

  // Fault site: abort or slow the epoch-state phase specifically.
  fault::CheckAbortable(fault::kPublishEpochState,
                        fault::Hash(fault::kPublishEpochState), view.epoch);

  // Policy-owned per-epoch state over the *merged* global view — distinct
  // from the per-shard states the snapshots carry, because the cached serve
  // path realizes over this cache's concatenated arrays. Built last so the
  // view handed to the hook is final.
  if (!view.shards.empty()) {
    cache->policy_state =
        view.shards.front()->policy->BuildEpochState(cache->AsView());
  }
  if (timings != nullptr) {
    timings->merge_us =
        std::chrono::duration<double, std::micro>(merge_done - build_start)
            .count();
    timings->epoch_state_us =
        std::chrono::duration<double, std::micro>(Clock::now() - merge_done)
            .count();
  }
  return cache;
}

}  // namespace randrank
