#include "serve/rank_snapshot.h"

#include <algorithm>
#include <cassert>

#include "core/policy/promotion_policy.h"
#include "core/rank_merge.h"

namespace randrank {

size_t RankSnapshot::TopM(size_t m, Rng& rng, std::vector<uint32_t>* out) const {
  const RankPromotionConfig* config = policy->AsPromotion();
  if (config != nullptr) return MergePrefix(*config, det, pool, m, rng, out);
  const ShardView view = AsView();
  PolicyScratch scratch;
  return policy->ServePrefix(&view, 1, epoch_state.get(), scratch, m, rng, out);
}

uint32_t RankSnapshot::PageAtRank(size_t rank, Rng& rng) const {
  const RankPromotionConfig* config = policy->AsPromotion();
  if (config != nullptr) return ResolveRankLazy(*config, det, pool, rank, rng);
  std::vector<uint32_t> prefix;
  TopM(rank, rng, &prefix);
  assert(prefix.size() == rank);
  return prefix.back();
}

std::shared_ptr<const RankSnapshot> RankSnapshot::Build(
    std::shared_ptr<const StochasticRankingPolicy> policy, uint64_t epoch,
    const std::vector<uint32_t>& pages, const std::vector<double>& popularity,
    const std::vector<uint8_t>& zero_awareness,
    const std::vector<int64_t>& birth_step, Rng& rng,
    bool build_epoch_state) {
  assert(policy != nullptr && policy->Valid());
  auto snap = std::make_shared<RankSnapshot>();
  snap->epoch = epoch;
  snap->policy = std::move(policy);
  snap->det.reserve(pages.size());

  for (const uint32_t p : pages) {
    assert(p < popularity.size());
    (snap->policy->PoolMembership(zero_awareness[p] != 0, rng) ? snap->pool
                                                               : snap->det)
        .push_back(p);
  }

  std::sort(snap->det.begin(), snap->det.end(), [&](uint32_t a, uint32_t b) {
    return RankOrderBefore(popularity[a], birth_step[a], a, popularity[b],
                           birth_step[b], b);
  });
  snap->det_score.reserve(snap->det.size());
  snap->det_birth.reserve(snap->det.size());
  for (const uint32_t p : snap->det) {
    snap->det_score.push_back(popularity[p]);
    snap->det_birth.push_back(birth_step[p]);
  }
  // Per-epoch policy state over this shard's finished view (deterministic,
  // so parallel shard builds stay reproducible; no Rng by contract).
  if (build_epoch_state) {
    snap->epoch_state = snap->policy->BuildEpochState(snap->AsView());
  }
  return snap;
}

std::shared_ptr<const RankSnapshot> RankSnapshot::Build(
    const RankPromotionConfig& config, uint64_t epoch,
    const std::vector<uint32_t>& pages, const std::vector<double>& popularity,
    const std::vector<uint8_t>& zero_awareness,
    const std::vector<int64_t>& birth_step, Rng& rng) {
  return Build(MakePromotionPolicy(config), epoch, pages, popularity,
               zero_awareness, birth_step, rng);
}

size_t BestDetHead(const RankSnapshot* const* snaps, const size_t* cursors,
                   size_t shards) {
  size_t best = shards;
  for (size_t s = 0; s < shards; ++s) {
    const RankSnapshot& snap = *snaps[s];
    const size_t c = cursors[s];
    if (c >= snap.det.size()) continue;
    if (best == shards) {
      best = s;
      continue;
    }
    const RankSnapshot& bs = *snaps[best];
    const size_t bc = cursors[best];
    if (RankOrderBefore(snap.det_score[c], snap.det_birth[c], snap.det[c],
                        bs.det_score[bc], bs.det_birth[bc], bs.det[bc])) {
      best = s;
    }
  }
  return best;
}

size_t ServingView::n() const {
  size_t total = 0;
  for (const auto& shard : shards) total += shard->n();
  return total;
}

}  // namespace randrank
