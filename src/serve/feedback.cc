#include "serve/feedback.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace randrank {
namespace {

uint32_t RoundStochastic(double x, Rng& rng) {
  const double floor_x = std::floor(x);
  const double frac = x - floor_x;
  return static_cast<uint32_t>(floor_x) + (rng.NextBernoulli(frac) ? 1 : 0);
}

}  // namespace

size_t ServingPageState::ZeroAwarenessPages() const {
  size_t count = 0;
  for (const uint8_t z : zero_awareness) count += z;
  return count;
}

ServingPageState MakeServingPageState(const CommunityParams& params, Rng& rng) {
  assert(params.Valid());
  ServingPageState state;
  state.users = params.u;
  state.quality = params.QualityValues();
  // QualityValues is descending by construction; shuffle the assignment so
  // page id (and therefore shard placement) carries no quality signal.
  for (size_t i = state.quality.size(); i > 1; --i) {
    std::swap(state.quality[i - 1], state.quality[rng.NextIndex(i)]);
  }
  state.aware.assign(params.n, 0);
  state.popularity.assign(params.n, 0.0);
  state.zero_awareness.assign(params.n, 1);
  state.birth_step.assign(params.n, 0);
  return state;
}

void FoldVisits(const std::vector<uint64_t>& visits, ServingPageState* state,
                Rng& rng) {
  assert(visits.size() == state->n());
  const auto u = static_cast<double>(state->users);
  for (size_t p = 0; p < visits.size(); ++p) {
    const uint64_t v = visits[p];
    if (v == 0) continue;
    const double unaware = u - static_cast<double>(state->aware[p]);
    if (unaware <= 0.0) continue;
    const double hit_prob =
        1.0 - std::pow(1.0 - 1.0 / u, static_cast<double>(v));
    const uint32_t converts =
        std::min(static_cast<uint32_t>(unaware),
                 RoundStochastic(unaware * hit_prob, rng));
    if (converts == 0) continue;
    state->aware[p] += converts;
    state->popularity[p] =
        state->quality[p] * static_cast<double>(state->aware[p]) / u;
    state->zero_awareness[p] = 0;
  }
}

}  // namespace randrank
