#include "serve/query_workload.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/visit_law.h"
#include "obs/metrics.h"
#include "serve/batch_queue.h"

namespace randrank {
namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

WorkloadResult RunQueryWorkload(ShardedRankServer& server,
                                const WorkloadOptions& options) {
  const size_t threads = std::max<size_t>(1, options.threads);
  const size_t quota = options.queries_per_thread;
  const size_t top_m = std::max<size_t>(1, options.top_m);

  // One shared click model: the rank of the clicked result follows the
  // paper's F2 law truncated to the served page (VisitLaw is immutable, so
  // sharing it across workers is safe).
  const VisitLaw click_law(top_m, 1.0, options.rank_bias_exponent);

  std::vector<std::vector<double>> latencies_us(threads);
  std::atomic<bool> go{false};

  // Click ranks come from the workload's own seed (stream per worker), so
  // the traffic is reproducible regardless of the server's context state.
  // The seed is mixed through splitmix64 first: the server hands out streams
  // 0..N of its own (unmixed) ServeOptions::seed, so a caller passing the
  // same number for both seeds must not get click sequences bit-identical to
  // (and thus correlated with) the serving realizations.
  uint64_t mix_state = options.seed;
  const uint64_t click_seed = SplitMix64(&mix_state) ^ 0xc11c5eedULL;

  const size_t batch_size = std::max<size_t>(1, options.batch_size);
  // One queue shared by every worker in async mode (that is the point:
  // many producers, one batching consumer).
  std::unique_ptr<BatchQueue> queue;
  if (options.async) {
    BatchQueueOptions qopts;
    qopts.max_batch = batch_size;
    qopts.max_delay_us = options.async_max_delay_us;
    // The queue publishes its wait histogram and occupancy counters through
    // the server's registry (replacing the old hand-copied stats() fields in
    // WorkloadResult).
    qopts.metrics = server.metrics();
    qopts.trace = server.trace();
    qopts.obs_prefix = "workload_queue";
    queue = std::make_unique<BatchQueue>(server, qopts);
  }

  auto click = [&](ShardedRankServer::Context& ctx, Rng& click_rng,
                   const std::vector<uint32_t>& results, size_t served) {
    if (options.record_visits && served > 0) {
      size_t rank = click_law.SampleRank(click_rng);
      if (rank > served) rank = served;  // short list: clamp to the tail
      server.RecordVisit(ctx, results[rank - 1]);
    }
  };

  auto worker = [&](size_t t) {
    ShardedRankServer::Context ctx = server.CreateContext();
    Rng click_rng = Rng::ForStream(click_seed, t);
    std::vector<double>& lat = latencies_us[t];
    lat.reserve(quota);
    while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
    if (options.async) {
      // Windowed pipelining: keep up to batch_size queries in flight, then
      // collect. Latency is submit-to-completion, queueing included.
      std::vector<std::future<std::vector<uint32_t>>> window;
      std::vector<Clock::time_point> submitted;
      window.reserve(batch_size);
      submitted.reserve(batch_size);
      for (size_t q = 0; q < quota;) {
        const size_t inflight = std::min(batch_size, quota - q);
        window.clear();
        submitted.clear();
        for (size_t i = 0; i < inflight; ++i) {
          submitted.push_back(Clock::now());
          window.push_back(queue->Submit(top_m));
        }
        for (size_t i = 0; i < inflight; ++i) {
          const std::vector<uint32_t> results = window[i].get();
          lat.push_back(SecondsBetween(submitted[i], Clock::now()) * 1e6);
          click(ctx, click_rng, results, results.size());
        }
        q += inflight;
      }
    } else if (batch_size > 1) {
      QueryBatch batch(top_m, 0);
      for (size_t q = 0; q < quota;) {
        const size_t count = std::min(batch_size, quota - q);
        batch.Resize(count);
        const Clock::time_point t0 = Clock::now();
        server.ServeBatch(ctx, &batch);
        const Clock::time_point t1 = Clock::now();
        const double per_query_us =
            SecondsBetween(t0, t1) * 1e6 / static_cast<double>(count);
        for (size_t i = 0; i < count; ++i) {
          lat.push_back(per_query_us);
          click(ctx, click_rng, batch.results[i], batch.results[i].size());
        }
        q += count;
      }
    } else {
      std::vector<uint32_t> results;
      results.reserve(top_m);
      for (size_t q = 0; q < quota; ++q) {
        const Clock::time_point t0 = Clock::now();
        const size_t served = server.ServeTopM(ctx, top_m, &results);
        const Clock::time_point t1 = Clock::now();
        lat.push_back(SecondsBetween(t0, t1) * 1e6);
        click(ctx, click_rng, results, served);
      }
    }
    server.FlushFeedback(ctx);
  };

  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);

  // With a registry attached, per-query service times accumulate in the
  // serve histograms as a side effect of serving; snapshotting around the
  // run isolates this workload's recordings from anything already there.
  const std::string hist_prefix = server.obs_prefix() + "/latency_ns/";
  obs::MetricsSnapshot obs_before;
  if (server.metrics() != nullptr) obs_before = server.metrics()->Snapshot();

  const uint64_t visits_before = server.total_visits();
  const Clock::time_point start = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& th : pool) th.join();
  const Clock::time_point stop = Clock::now();

  WorkloadResult result;
  result.queries = threads * quota;
  result.visits = server.total_visits() - visits_before;
  result.seconds = SecondsBetween(start, stop);
  if (queue != nullptr) {
    queue->Stop();
    result.batches = queue->batches_served();
  } else {
    result.batches = threads * ((quota + batch_size - 1) / batch_size);
  }
  result.qps = result.seconds > 0.0
                   ? static_cast<double>(result.queries) / result.seconds
                   : 0.0;

  std::vector<double> all;
  all.reserve(result.queries);
  for (const auto& lat : latencies_us) {
    all.insert(all.end(), lat.begin(), lat.end());
  }
  if (!all.empty()) {
    // One sort, then interpolated index lookups (Percentile() would re-sort
    // a copy per percentile).
    std::sort(all.begin(), all.end());
    const auto at = [&all](double p) {
      const double idx = p / 100.0 * static_cast<double>(all.size() - 1);
      const auto lo = static_cast<size_t>(idx);
      const size_t hi = std::min(lo + 1, all.size() - 1);
      return all[lo] + (all[hi] - all[lo]) * (idx - static_cast<double>(lo));
    };
    result.p50_latency_us = at(50.0);
    result.p99_latency_us = at(99.0);
    result.max_latency_us = all.back();
  }

  // Synchronous modes: prefer the per-query serve histogram over the
  // wall-clock estimate (which, in batched mode, was batch wall time divided
  // by batch size — a mean, not a distribution). Async keeps the measured
  // submit-to-completion numbers: queue wait is part of what it reports.
  if (!options.async && server.metrics() != nullptr) {
    const obs::MetricsSnapshot obs_after = server.metrics()->Snapshot();
    obs::HistogramSnapshot served;
    for (const auto& [name, snap] : obs_after.histograms) {
      if (name.rfind(hist_prefix, 0) != 0) continue;
      const auto before = obs_before.histograms.find(name);
      served.Merge(before != obs_before.histograms.end()
                       ? snap.Delta(before->second)
                       : snap);
    }
    if (!served.empty()) {
      result.p50_latency_us = served.Quantile(0.50) * 1e-3;
      result.p99_latency_us = served.Quantile(0.99) * 1e-3;
      result.max_latency_us = static_cast<double>(served.Max()) * 1e-3;
      result.histogram_latency = true;
    }
  }
  return result;
}

}  // namespace randrank
