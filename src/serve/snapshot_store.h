#ifndef RANDRANK_SERVE_SNAPSHOT_STORE_H_
#define RANDRANK_SERVE_SNAPSHOT_STORE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

namespace randrank {

/// Single-slot publish point for immutable snapshots: one writer swaps in
/// new generations, many readers observe them through per-thread
/// SnapshotHandle caches (RCU-style epoch publish).
///
/// The hot read path is a single acquire load of the version counter — no
/// lock, no reference-count traffic. A reader only touches the mutex on the
/// refresh slow path, at most once per published generation, to copy the
/// shared_ptr into its thread-local cache. Superseded snapshots are
/// reclaimed by shared_ptr ownership once the last handle refreshes past
/// them, so the writer never blocks on readers and readers never observe a
/// freed snapshot.
template <typename T>
class SnapshotStore {
 public:
  SnapshotStore() = default;
  SnapshotStore(const SnapshotStore&) = delete;
  SnapshotStore& operator=(const SnapshotStore&) = delete;

  /// Writer side: atomically replaces the current snapshot.
  void Publish(std::shared_ptr<const T> snap) {
    std::lock_guard<std::mutex> lock(mutex_);
    current_ = std::move(snap);
    // The store is written under the same mutex the readers' slow path
    // takes, so release ordering on the counter is enough for the fast-path
    // version check.
    version_.fetch_add(1, std::memory_order_release);
  }

  /// Reader slow path: snapshot plus the version it corresponds to.
  std::shared_ptr<const T> Load(uint64_t* version) const {
    std::lock_guard<std::mutex> lock(mutex_);
    if (version) *version = version_.load(std::memory_order_relaxed);
    return current_;
  }

  /// Current publish count. 0 means nothing has been published yet.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

 private:
  mutable std::mutex mutex_;
  std::shared_ptr<const T> current_;
  std::atomic<uint64_t> version_{0};
};

/// A reader thread's cached view of one SnapshotStore. Get() is the serving
/// hot path: one atomic load and a compare in steady state. Each handle must
/// be used by a single thread at a time (the server hands one out per
/// serving context).
template <typename T>
class SnapshotHandle {
 public:
  SnapshotHandle() = default;
  explicit SnapshotHandle(const SnapshotStore<T>* store) : store_(store) {}

  /// Latest published snapshot, or nullptr when none has been published.
  /// The returned pointer stays valid until the next Get() on this handle
  /// (the cache keeps shared ownership of the generation it returned).
  const T* Get() {
    const uint64_t v = store_->version();
    if (v != cached_version_) {
      cached_ = store_->Load(&cached_version_);
    }
    return cached_.get();
  }

  /// Drops the cached reference (releases this reader's pin on the old
  /// generation without acquiring a new one).
  void Release() {
    cached_.reset();
    cached_version_ = 0;
  }

 private:
  const SnapshotStore<T>* store_ = nullptr;
  std::shared_ptr<const T> cached_;
  uint64_t cached_version_ = 0;
};

}  // namespace randrank

#endif  // RANDRANK_SERVE_SNAPSHOT_STORE_H_
