#ifndef RANDRANK_SERVE_QUERY_WORKLOAD_H_
#define RANDRANK_SERVE_QUERY_WORKLOAD_H_

#include <cstddef>
#include <cstdint>

#include "serve/batch_queue.h"
#include "serve/sharded_rank_server.h"

namespace randrank {

struct WorkloadOptions {
  /// Closed-loop worker threads; each issues its next query as soon as the
  /// previous one completes. 0 selects 1.
  size_t threads = 1;
  size_t queries_per_thread = 10000;
  /// Results requested per query (the served "page one").
  size_t top_m = 10;
  /// Queries issued per ServeBatch call (one snapshot pin and epoch-cache
  /// lookup amortized over the batch). <= 1 uses the per-query ServeTopM
  /// path. Results are identical either way; only throughput changes.
  size_t batch_size = 1;
  /// Route queries through an async BatchQueue instead of serving inline:
  /// each worker keeps a window of `batch_size` submissions in flight
  /// (futures) against one shared queue, so latency includes queueing and
  /// the queue's consumer does all serving. Exercises serve/batch_queue.h.
  bool async = false;
  /// Async mode only: BatchQueueOptions::max_delay_us for the shared queue
  /// (deadline-aware batching; 0 drains greedily).
  uint64_t async_max_delay_us = 0;
  /// Rank->visit bias exponent of the click model (paper Eq. 4: 3/2).
  double rank_bias_exponent = 1.5;
  /// When true, every query clicks one result at a rank drawn from the
  /// visit law truncated to top_m, and reports it via RecordVisit — the
  /// serving traffic then has the same position-bias shape as the paper's
  /// simulations.
  bool record_visits = true;
  /// Seeds the click model: worker t draws click ranks from stream t of
  /// this seed, so the traffic shape is reproducible across runs
  /// independently of the server's own per-context streams.
  uint64_t seed = 1;
};

struct WorkloadResult {
  size_t queries = 0;
  uint64_t visits = 0;
  double seconds = 0.0;
  double qps = 0.0;
  /// Latency percentiles. Semantics changed with the obs layer: when the
  /// server carries a MetricsRegistry (ServeOptions::metrics), the
  /// synchronous modes derive these from the per-query serve histogram
  /// (true per-query service time, uniform across the single and batched
  /// paths) instead of the old batch-wall-time / batch-size estimate, which
  /// flattened the tail. Async mode always reports workload-measured
  /// submit-to-completion latency (queue wait included). Without a registry
  /// the old wall-clock measurement stands. histogram_latency says which
  /// source filled them.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double max_latency_us = 0.0;
  /// True when the percentiles above came from the serve histogram delta.
  bool histogram_latency = false;
  /// ServeBatch executions observed (== queries in per-query mode; for the
  /// async mode this is the queue consumer's count).
  uint64_t batches = 0;
  /// Queue-health counters (depth, batch sizes, drain causes) are no longer
  /// copied out here: in async mode the shared BatchQueue publishes them
  /// into the server's MetricsRegistry (`workload_queue/...`), the same
  /// export path live monitoring reads.
};

/// Closed-loop load generator: spawns `threads` workers against the server,
/// each with its own serving Context, issuing top-m queries (singly, in
/// ServeBatch batches, or through an async BatchQueue — see
/// WorkloadOptions) and clicking results per the rank-biased visit law from
/// visit_law.h. Blocks until every worker finished its quota, flushes all
/// feedback, and returns aggregate throughput and latency percentiles (see
/// WorkloadResult for which clock feeds the percentiles in each mode).
WorkloadResult RunQueryWorkload(ShardedRankServer& server,
                                const WorkloadOptions& options);

}  // namespace randrank

#endif  // RANDRANK_SERVE_QUERY_WORKLOAD_H_
