#ifndef RANDRANK_SERVE_BATCH_QUEUE_H_
#define RANDRANK_SERVE_BATCH_QUEUE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/sharded_rank_server.h"

namespace randrank {

struct BatchQueueOptions {
  /// Upper bound on queries folded into one ServeBatch execution (one view
  /// pin + epoch-cache lookup per batch). 0 selects 1.
  size_t max_batch = 64;
  /// Backpressure: Submit blocks while this many queries are already queued.
  /// 0 means unbounded.
  size_t max_pending = 1 << 16;
  /// Deadline-aware batching: the consumer drains once `max_batch` queries
  /// are pending OR the oldest pending query has waited this long, whichever
  /// comes first. 0 (default) drains greedily — whatever is pending the
  /// moment the consumer is free, with no added latency floor. A nonzero
  /// delay trades per-query latency for fuller batches under light load
  /// (fewer view pins per query); it never delays a full batch.
  uint64_t max_delay_us = 0;
  /// Per-query deadline, stamped at Submit. A query whose deadline has
  /// already passed when the consumer picks it up is not served: its future
  /// resolves with a DeadlineExceededError, its callback runs with
  /// QueryOutcome::kDeadlineExpired and an empty result — an explicit
  /// timeout, never a silent wrong answer and never a hang. 0 (default)
  /// disables deadlines. Time spent blocked on backpressure counts against
  /// the deadline: under overload, queued-too-long work is shed instead of
  /// served stale.
  uint64_t deadline_us = 0;
  /// Observability (optional, borrowed): with `metrics` set the queue
  /// records per-query queue wait (submit -> drain pickup) into the
  /// histogram `<obs_prefix>/wait_ns` and mirrors every BatchQueueStats
  /// counter as registry metrics (`<obs_prefix>/queries_total`,
  /// `batches_total`, `full_drains`, `deadline_drains`, `greedy_drains`,
  /// `deadline_expired` counters; `depth`, `max_depth`, `max_batch` gauges) — the one export
  /// path live monitoring reads, instead of hand-copying stats() fields.
  obs::MetricsRegistry* metrics = nullptr;
  /// With `trace` also set, drains emit sampled "queue/drain" spans (depth,
  /// batch size, drain cause) at the TraceLog's sample_every stride.
  obs::TraceLog* trace = nullptr;
  std::string obs_prefix = "queue";
};

/// Point-in-time occupancy counters for tuning the queue (see
/// BatchQueue::stats). Monotone totals; read with relaxed ordering, so a
/// concurrent reader may see totals from slightly different instants.
struct BatchQueueStats {
  /// Queries and ServeBatch executions completed so far.
  uint64_t queries_served = 0;
  uint64_t batches_served = 0;
  /// Largest single ServeBatch execution observed.
  uint64_t max_batch_served = 0;
  /// Deepest backlog observed at any drain.
  uint64_t max_queue_depth = 0;
  /// Drains triggered by a full batch vs. by the max_delay_us deadline
  /// expiring vs. greedily (no deadline configured, or stop-drain).
  uint64_t full_drains = 0;
  uint64_t deadline_drains = 0;
  uint64_t greedy_drains = 0;
  /// Queries completed with an explicit timeout (deadline_us exceeded
  /// before pickup) instead of being served.
  uint64_t deadline_expired = 0;

  /// Mean queries per ServeBatch execution.
  double mean_batch_size() const {
    return batches_served > 0
               ? static_cast<double>(queries_served) /
                     static_cast<double>(batches_served)
               : 0.0;
  }
};

/// How a queued query ended, for the callback Submit flavor.
enum class QueryOutcome : uint8_t {
  kServed,           // results hold the realized top-m
  kDeadlineExpired,  // deadline_us elapsed before pickup; results are empty
};

/// Resolves the future of a query whose BatchQueueOptions::deadline_us
/// expired before the consumer picked it up. The explicit-timeout contract:
/// expired queries fail loudly instead of returning an empty (wrong) list.
class DeadlineExceededError : public std::runtime_error {
 public:
  explicit DeadlineExceededError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Async submission front-end for ShardedRankServer: a multi-producer,
/// single-consumer queue whose consumer thread drains whatever is pending,
/// folds runs of same-m queries into QueryBatch executions, and completes
/// each query's future or callback. Producers never touch serving state —
/// they enqueue and move on, so one producer can pipeline many in-flight
/// queries — and the batch size adapts to load: near-empty queues serve
/// batches of one (no added latency floor), bursts are swallowed at up to
/// max_batch per view pin. With BatchQueueOptions::max_delay_us set the
/// consumer instead collects up to max_batch or T microseconds, whichever
/// first (deadline-aware batching); queue-depth and batch-size counters
/// (stats()) expose the resulting occupancy for tuning.
///
/// Producers pay one mutex acquisition per Submit; the consumer takes the
/// whole pending backlog in one swap, so the lock is never held during
/// serving. Results come from the consumer's own serving Context (its Rng
/// stream), drawn in submission order.
class BatchQueue {
 public:
  explicit BatchQueue(ShardedRankServer& server, BatchQueueOptions options = {});
  /// Stops and drains: queries accepted before the stop are still served.
  ~BatchQueue();

  BatchQueue(const BatchQueue&) = delete;
  BatchQueue& operator=(const BatchQueue&) = delete;

  /// Enqueues a top-m query; the future resolves to the served result list,
  /// or throws DeadlineExceededError if the query's deadline_us expired
  /// before pickup. Blocks only for backpressure. After Stop() the returned
  /// future is already resolved with an empty list.
  std::future<std::vector<uint32_t>> Submit(size_t m);

  /// Callback flavor (no promise/future overhead): `done` runs on the
  /// consumer thread with the outcome and the served results (empty on
  /// kDeadlineExpired). Returns false (and drops the query without invoking
  /// `done`) after Stop().
  bool Submit(size_t m,
              std::function<void(QueryOutcome, std::vector<uint32_t>)> done);

  /// Rejects new submissions, serves everything already queued, and joins
  /// the consumer. Idempotent and safe to call from several threads (one
  /// caller joins; the others return immediately, possibly before the drain
  /// finishes). Also run by the destructor.
  void Stop();

  /// Feedback pass-through to the consumer's context is intentionally not
  /// offered: clicks happen on the caller's timeline, so producers record
  /// them through their own Context.

  uint64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  uint64_t batches_served() const {
    return batches_served_.load(std::memory_order_relaxed);
  }
  uint64_t deadline_expired() const {
    return deadline_expired_.load(std::memory_order_relaxed);
  }

  /// Occupancy counters so deadline/batch knobs can be tuned from
  /// measurement instead of folklore. Thread-safe; totals are relaxed reads.
  BatchQueueStats stats() const;

 private:
  struct PendingQuery {
    size_t m = 0;
    bool has_promise = false;
    /// Submission stamp for the queue-wait histogram; 0 (never taken) when
    /// the queue runs without a registry.
    uint64_t submitted_ns = 0;
    /// Absolute expiry (submit + deadline_us); epoch value (never stamped)
    /// when the queue runs without deadlines.
    std::chrono::steady_clock::time_point deadline{};
    std::promise<std::vector<uint32_t>> promise;
    std::function<void(QueryOutcome, std::vector<uint32_t>)> callback;
  };

  /// Completes one expired query with its explicit timeout.
  static void CompleteExpired(PendingQuery& query);

  bool Enqueue(PendingQuery&& query);
  void ConsumerLoop();

  ShardedRankServer& server_;
  const BatchQueueOptions opts_;

  std::mutex mutex_;
  std::condition_variable submitted_;
  std::condition_variable drained_;
  std::vector<PendingQuery> pending_;
  /// Arrival time of pending_[0] (the deadline anchor); meaningful only
  /// while pending_ is non-empty. Guarded by mutex_.
  std::chrono::steady_clock::time_point oldest_pending_at_;
  bool stopping_ = false;

  std::atomic<uint64_t> queries_served_{0};
  std::atomic<uint64_t> batches_served_{0};
  std::atomic<uint64_t> max_batch_served_{0};
  std::atomic<uint64_t> max_queue_depth_{0};
  std::atomic<uint64_t> full_drains_{0};
  std::atomic<uint64_t> deadline_drains_{0};
  std::atomic<uint64_t> greedy_drains_{0};
  std::atomic<uint64_t> deadline_expired_{0};

  /// Registry endpoints, resolved once at construction (all null when
  /// opts_.metrics is null). Only the consumer thread writes them, except
  /// wait_hist_ which is inherently multi-shard.
  obs::LatencyHistogram* wait_hist_ = nullptr;
  obs::Counter* queries_ctr_ = nullptr;
  obs::Counter* batches_ctr_ = nullptr;
  obs::Counter* full_ctr_ = nullptr;
  obs::Counter* deadline_ctr_ = nullptr;
  obs::Counter* greedy_ctr_ = nullptr;
  obs::Counter* expired_ctr_ = nullptr;
  obs::Gauge* depth_gauge_ = nullptr;
  obs::Gauge* max_depth_gauge_ = nullptr;
  obs::Gauge* max_batch_gauge_ = nullptr;
  /// Consumer-local drain counter driving queue/drain span sampling.
  uint64_t drain_seq_ = 0;

  std::thread consumer_;
};

}  // namespace randrank

#endif  // RANDRANK_SERVE_BATCH_QUEUE_H_
