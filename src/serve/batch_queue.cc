#include "serve/batch_queue.h"

#include <algorithm>
#include <utility>

#include "fault/fault.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace randrank {

BatchQueue::BatchQueue(ShardedRankServer& server, BatchQueueOptions options)
    : server_(server), opts_(options) {
  if (opts_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *opts_.metrics;
    const std::string& p = opts_.obs_prefix;
    wait_hist_ = &reg.GetHistogram(p + "/wait_ns");
    queries_ctr_ = &reg.GetCounter(p + "/queries_total");
    batches_ctr_ = &reg.GetCounter(p + "/batches_total");
    full_ctr_ = &reg.GetCounter(p + "/full_drains");
    deadline_ctr_ = &reg.GetCounter(p + "/deadline_drains");
    greedy_ctr_ = &reg.GetCounter(p + "/greedy_drains");
    expired_ctr_ = &reg.GetCounter(p + "/deadline_expired");
    depth_gauge_ = &reg.GetGauge(p + "/depth");
    max_depth_gauge_ = &reg.GetGauge(p + "/max_depth");
    max_batch_gauge_ = &reg.GetGauge(p + "/max_batch");
  }
  consumer_ = std::thread([this] { ConsumerLoop(); });
}

BatchQueue::~BatchQueue() { Stop(); }

std::future<std::vector<uint32_t>> BatchQueue::Submit(size_t m) {
  PendingQuery query;
  query.m = m;
  query.has_promise = true;
  std::future<std::vector<uint32_t>> result = query.promise.get_future();
  if (!Enqueue(std::move(query))) {
    // Stopped: resolve immediately with an empty list rather than leaking a
    // broken promise to the caller.
    std::promise<std::vector<uint32_t>> rejected;
    rejected.set_value({});
    return rejected.get_future();
  }
  return result;
}

bool BatchQueue::Submit(
    size_t m, std::function<void(QueryOutcome, std::vector<uint32_t>)> done) {
  PendingQuery query;
  query.m = m;
  query.callback = std::move(done);
  return Enqueue(std::move(query));
}

bool BatchQueue::Enqueue(PendingQuery&& query) {
  if (opts_.deadline_us > 0) {
    // Stamped before the backpressure wait, so time spent blocked on a full
    // queue burns the deadline (overload sheds instead of serving stale).
    query.deadline = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(opts_.deadline_us);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (opts_.max_pending > 0) {
      drained_.wait(lock, [this] {
        return stopping_ || pending_.size() < opts_.max_pending;
      });
    }
    if (stopping_) return false;
    if (wait_hist_ != nullptr) query.submitted_ns = obs::FastNowNs();
    if (pending_.empty()) {
      // This query anchors the drain deadline for the batch it starts.
      oldest_pending_at_ = std::chrono::steady_clock::now();
    }
    pending_.push_back(std::move(query));
  }
  submitted_.notify_one();
  return true;
}

BatchQueueStats BatchQueue::stats() const {
  BatchQueueStats stats;
  stats.queries_served = queries_served_.load(std::memory_order_relaxed);
  stats.batches_served = batches_served_.load(std::memory_order_relaxed);
  stats.max_batch_served = max_batch_served_.load(std::memory_order_relaxed);
  stats.max_queue_depth = max_queue_depth_.load(std::memory_order_relaxed);
  stats.full_drains = full_drains_.load(std::memory_order_relaxed);
  stats.deadline_drains = deadline_drains_.load(std::memory_order_relaxed);
  stats.greedy_drains = greedy_drains_.load(std::memory_order_relaxed);
  stats.deadline_expired = deadline_expired_.load(std::memory_order_relaxed);
  return stats;
}

void BatchQueue::Stop() {
  // Claiming the thread handle under the mutex makes concurrent Stop calls
  // safe: exactly one caller joins, the others see an empty handle.
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    to_join = std::move(consumer_);
  }
  submitted_.notify_all();
  drained_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void BatchQueue::CompleteExpired(PendingQuery& query) {
  if (query.has_promise) {
    query.promise.set_exception(std::make_exception_ptr(
        DeadlineExceededError("query deadline expired before pickup")));
  } else if (query.callback) {
    query.callback(QueryOutcome::kDeadlineExpired, {});
  }
}

void BatchQueue::ConsumerLoop() {
  ShardedRankServer::Context ctx = server_.CreateContext();
  const size_t max_batch = std::max<size_t>(1, opts_.max_batch);
  const auto max_delay = std::chrono::microseconds(opts_.max_delay_us);
  QueryBatch batch;
  std::vector<PendingQuery> draining;

  for (;;) {
    const char* cause = "greedy";
    uint64_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      submitted_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping and fully drained
      if (opts_.max_delay_us == 0 || stopping_) {
        greedy_drains_.fetch_add(1, std::memory_order_relaxed);
      } else {
        // Deadline-aware collection: hold the drain until the batch is full
        // or the oldest pending query has waited max_delay_us. The anchor
        // is pending_[0]'s arrival, so the bound is per-query, not sliding.
        const auto deadline = oldest_pending_at_ + max_delay;
        const bool full = submitted_.wait_until(lock, deadline, [&] {
          return stopping_ || pending_.size() >= max_batch;
        });
        cause = stopping_ ? "greedy" : full ? "full" : "deadline";
        (stopping_ ? greedy_drains_ : full ? full_drains_ : deadline_drains_)
            .fetch_add(1, std::memory_order_relaxed);
      }
      // This thread is the only writer of the max counters; plain
      // load/store suffices.
      depth = pending_.size();
      if (depth > max_queue_depth_.load(std::memory_order_relaxed)) {
        max_queue_depth_.store(depth, std::memory_order_relaxed);
      }
      draining.swap(pending_);
    }
    drained_.notify_all();

    if (wait_hist_ != nullptr) {
      // One clock read covers the whole drain: every drained query became
      // servable at the same pickup instant.
      const uint64_t picked_up_ns = obs::FastNowNs();
      for (const PendingQuery& query : draining) {
        wait_hist_->Record(picked_up_ns > query.submitted_ns
                               ? picked_up_ns - query.submitted_ns
                               : 0);
      }
      (cause[0] == 'f'   ? full_ctr_
       : cause[0] == 'd' ? deadline_ctr_
                         : greedy_ctr_)
          ->Add();
      depth_gauge_->Set(static_cast<double>(depth));
      max_depth_gauge_->Set(static_cast<double>(
          max_queue_depth_.load(std::memory_order_relaxed)));
      if (opts_.trace != nullptr && opts_.trace->sample_every() > 0 &&
          drain_seq_++ % opts_.trace->sample_every() == 0) {
        opts_.trace->EmitSpan("queue/drain", 0.0,
                              {{"depth", static_cast<double>(depth)}},
                              {{"cause", cause}});
      }
    }

    // Fault site (delay-only): a stalled consumer, to drive queries past
    // their deadlines deterministically in tests and chaos runs.
    {
      static constexpr uint64_t kHash = fault::Hash(fault::kQueueServe);
      fault::Decision decision;
      if (fault::Check(fault::kQueueServe, kHash, /*epoch=*/0, &decision)) {
        fault::ApplyDelay(decision);
      }
    }

    if (opts_.deadline_us > 0) {
      // Expiry sweep at pickup: queries past their deadline complete with an
      // explicit timeout (exception / kDeadlineExpired) and never reach
      // ServeBatch; survivors compact in submission order.
      const auto now = std::chrono::steady_clock::now();
      size_t kept = 0;
      uint64_t expired = 0;
      for (size_t i = 0; i < draining.size(); ++i) {
        if (now >= draining[i].deadline) {
          CompleteExpired(draining[i]);
          ++expired;
        } else {
          if (kept != i) draining[kept] = std::move(draining[i]);
          ++kept;
        }
      }
      if (expired > 0) {
        draining.resize(kept);
        deadline_expired_.fetch_add(expired, std::memory_order_relaxed);
        if (expired_ctr_ != nullptr) expired_ctr_->Add(expired);
      }
    }

    // Fold runs of same-m queries into one ServeBatch each: every query is
    // still an independent realization from this context's Rng stream, in
    // submission order, so batching is invisible in the results.
    size_t begin = 0;
    while (begin < draining.size()) {
      size_t end = begin + 1;
      while (end < draining.size() && end - begin < max_batch &&
             draining[end].m == draining[begin].m) {
        ++end;
      }
      const size_t count = end - begin;
      batch.m = draining[begin].m;
      batch.Resize(count);
      server_.ServeBatch(ctx, &batch);
      for (size_t i = 0; i < count; ++i) {
        PendingQuery& query = draining[begin + i];
        if (query.has_promise) {
          query.promise.set_value(std::move(batch.results[i]));
        } else if (query.callback) {
          query.callback(QueryOutcome::kServed, std::move(batch.results[i]));
        }
      }
      queries_served_.fetch_add(count, std::memory_order_relaxed);
      batches_served_.fetch_add(1, std::memory_order_relaxed);
      if (count > max_batch_served_.load(std::memory_order_relaxed)) {
        max_batch_served_.store(count, std::memory_order_relaxed);
      }
      if (queries_ctr_ != nullptr) {
        queries_ctr_->Add(count);
        batches_ctr_->Add();
        max_batch_gauge_->Set(static_cast<double>(
            max_batch_served_.load(std::memory_order_relaxed)));
      }
      begin = end;
    }
    draining.clear();
  }
}

}  // namespace randrank
