#include "serve/batch_queue.h"

#include <algorithm>
#include <utility>

namespace randrank {

BatchQueue::BatchQueue(ShardedRankServer& server, BatchQueueOptions options)
    : server_(server), opts_(options) {
  consumer_ = std::thread([this] { ConsumerLoop(); });
}

BatchQueue::~BatchQueue() { Stop(); }

std::future<std::vector<uint32_t>> BatchQueue::Submit(size_t m) {
  PendingQuery query;
  query.m = m;
  query.has_promise = true;
  std::future<std::vector<uint32_t>> result = query.promise.get_future();
  if (!Enqueue(std::move(query))) {
    // Stopped: resolve immediately with an empty list rather than leaking a
    // broken promise to the caller.
    std::promise<std::vector<uint32_t>> rejected;
    rejected.set_value({});
    return rejected.get_future();
  }
  return result;
}

bool BatchQueue::Submit(size_t m,
                        std::function<void(std::vector<uint32_t>)> done) {
  PendingQuery query;
  query.m = m;
  query.callback = std::move(done);
  return Enqueue(std::move(query));
}

bool BatchQueue::Enqueue(PendingQuery&& query) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    if (opts_.max_pending > 0) {
      drained_.wait(lock, [this] {
        return stopping_ || pending_.size() < opts_.max_pending;
      });
    }
    if (stopping_) return false;
    pending_.push_back(std::move(query));
  }
  submitted_.notify_one();
  return true;
}

void BatchQueue::Stop() {
  // Claiming the thread handle under the mutex makes concurrent Stop calls
  // safe: exactly one caller joins, the others see an empty handle.
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
    to_join = std::move(consumer_);
  }
  submitted_.notify_all();
  drained_.notify_all();
  if (to_join.joinable()) to_join.join();
}

void BatchQueue::ConsumerLoop() {
  ShardedRankServer::Context ctx = server_.CreateContext();
  const size_t max_batch = std::max<size_t>(1, opts_.max_batch);
  QueryBatch batch;
  std::vector<PendingQuery> draining;

  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      submitted_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping and fully drained
      draining.swap(pending_);
    }
    drained_.notify_all();

    // Fold runs of same-m queries into one ServeBatch each: every query is
    // still an independent realization from this context's Rng stream, in
    // submission order, so batching is invisible in the results.
    size_t begin = 0;
    while (begin < draining.size()) {
      size_t end = begin + 1;
      while (end < draining.size() && end - begin < max_batch &&
             draining[end].m == draining[begin].m) {
        ++end;
      }
      const size_t count = end - begin;
      batch.m = draining[begin].m;
      batch.Resize(count);
      server_.ServeBatch(ctx, &batch);
      for (size_t i = 0; i < count; ++i) {
        PendingQuery& query = draining[begin + i];
        if (query.has_promise) {
          query.promise.set_value(std::move(batch.results[i]));
        } else if (query.callback) {
          query.callback(std::move(batch.results[i]));
        }
      }
      queries_served_.fetch_add(count, std::memory_order_relaxed);
      batches_served_.fetch_add(1, std::memory_order_relaxed);
      begin = end;
    }
    draining.clear();
  }
}

}  // namespace randrank
