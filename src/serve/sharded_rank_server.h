#ifndef RANDRANK_SERVE_SHARDED_RANK_SERVER_H_
#define RANDRANK_SERVE_SHARDED_RANK_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/rank_merge.h"
#include "core/ranking_policy.h"
#include "serve/rank_snapshot.h"
#include "serve/snapshot_store.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace randrank {

struct ServeOptions {
  /// Number of shards pages are partitioned across (page p lives on shard
  /// p % shards). 0 selects 1.
  size_t shards = 4;
  /// Visits buffered per context before RecordVisit folds them into the
  /// shared feedback counters (amortizes the feedback lock).
  size_t feedback_batch = 256;
  /// Base seed; each serving context gets its own non-overlapping stream.
  uint64_t seed = 0x5eedULL;
};

/// Multi-threaded query-serving engine for randomized rank promotion: each
/// query receives the first m slots of a *fresh* random realization of the
/// merged list (paper Section 4), resolved in O(m·S) expected time without
/// materializing the n-page list.
///
/// Concurrency model — single writer, many readers:
///  * Pages are partitioned across S shards. The writer thread calls
///    Update() with new page state; it rebuilds every shard's RankSnapshot
///    off the serving path (optionally in parallel on a ThreadPool) and then
///    publishes all of them as one ServingView in a single atomic swap, so
///    queries are snapshot-isolated across shards: a query never mixes
///    ranking state from two different epochs.
///  * Each serving thread owns a Context (per-thread Rng stream, cached
///    snapshot handle, merge scratch, feedback batch). The query hot path
///    performs one atomic version check and otherwise touches only
///    immutable snapshot data and context-local scratch — no locks.
///  * Observed result clicks flow back through RecordVisit(); the writer
///    drains the aggregated per-page counts with DrainVisits() and folds
///    them into popularity/awareness for the next Update (see
///    serve/feedback.h), closing the simulate → serve loop.
///
/// Distribution guarantee: ServeTopM over S shards is distributed exactly as
/// the first m slots of Ranker::MaterializeList over the same global page
/// state. Deterministic entries are interleaved by an S-way merge on the
/// global sort key, and pool draws pick a shard weighted by its remaining
/// pool mass, then draw without replacement inside it — which is precisely a
/// uniform draw from the remaining global pool.
class ShardedRankServer {
 public:
  /// A serving thread's private state. Create one per worker via
  /// CreateContext(); a Context must not be used by two threads at once.
  class Context {
   public:
    Rng& rng() { return rng_; }
    /// Visits recorded but not yet folded into the shared counters.
    size_t pending_feedback() const { return visit_batch_.size(); }

   private:
    friend class ShardedRankServer;

    SnapshotHandle<ServingView> handle_;
    Rng rng_{0};
    std::vector<uint32_t> visit_batch_;
    // Per-query merge scratch, reused across queries to avoid allocation.
    std::vector<const RankSnapshot*> snaps_;
    std::vector<size_t> det_cursor_;
    std::vector<PoolPrefixSampler> samplers_;
  };

  ShardedRankServer(RankPromotionConfig config, size_t num_pages,
                    ServeOptions options = {});

  // --- Writer API (one thread at a time) ---

  /// Rebuilds every shard snapshot from global page state and publishes them
  /// as one new epoch. Safe to call while readers are serving. When `pool`
  /// is non-null the per-shard builds run on it in parallel.
  void Update(const std::vector<double>& popularity,
              const std::vector<uint8_t>& zero_awareness,
              const std::vector<int64_t>& birth_step,
              ThreadPool* pool = nullptr);

  /// Returns the accumulated per-page visit counts and resets them.
  std::vector<uint64_t> DrainVisits();

  // --- Read path (any number of threads, each with its own Context) ---

  /// Context with its own non-overlapping Rng stream. Thread-safe.
  Context CreateContext() const;

  /// Writes the first min(m, n) slots of a fresh realization into `out`
  /// (cleared first) and returns the count. Returns 0 before the first
  /// Update(). Lock-free in steady state.
  size_t ServeTopM(Context& ctx, size_t m, std::vector<uint32_t>* out) const;

  /// Records a served-result click for the feedback loop. Batched per
  /// context; call FlushFeedback when a context retires.
  void RecordVisit(Context& ctx, uint32_t page);
  void FlushFeedback(Context& ctx);

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t total_visits() const {
    return total_visits_.load(std::memory_order_relaxed);
  }
  size_t n() const { return n_; }
  size_t shards() const { return shard_pages_.size(); }
  const RankPromotionConfig& config() const { return config_; }

 private:
  RankPromotionConfig config_;
  size_t n_;
  ServeOptions opts_;
  std::vector<std::vector<uint32_t>> shard_pages_;  // page ids per shard

  SnapshotStore<ServingView> store_;
  std::atomic<uint64_t> epoch_{0};
  Rng writer_rng_;

  mutable std::atomic<uint64_t> context_seq_{0};

  mutable std::mutex feedback_mutex_;
  std::vector<uint64_t> visit_counts_;
  std::atomic<uint64_t> total_visits_{0};
};

}  // namespace randrank

#endif  // RANDRANK_SERVE_SHARDED_RANK_SERVER_H_
