#ifndef RANDRANK_SERVE_SHARDED_RANK_SERVER_H_
#define RANDRANK_SERVE_SHARDED_RANK_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/policy/stochastic_ranking_policy.h"
#include "core/rank_merge.h"
#include "core/ranking_policy.h"
#include "serve/rank_snapshot.h"
#include "serve/snapshot_store.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace randrank {

namespace obs {
class Counter;
class Gauge;
class LatencyHistogram;
class MetricsRegistry;
class TraceLog;
}  // namespace obs

struct ServeOptions {
  /// Number of shards pages are partitioned across (page p lives on shard
  /// p % shards). 0 selects 1.
  size_t shards = 4;
  /// Visits buffered per context before RecordVisit folds them into the
  /// shared feedback counters (amortizes the feedback lock).
  size_t feedback_batch = 256;
  /// Base seed; each serving context gets its own non-overlapping stream.
  uint64_t seed = 0x5eedULL;
  /// Build an EpochPrefixCache per published ServingView: the cross-shard
  /// deterministic merge (and the policy's BuildEpochState product — e.g.
  /// Plackett-Luce's alias table) runs once per epoch instead of once per
  /// query, and the serve path becomes O(m) work independent of the shard
  /// count. Off reproduces the per-query sharded path (kept for ablation;
  /// both paths realize exactly the MaterializeList distribution).
  /// Effective only when the policy's Capabilities() also declare
  /// epoch_state; otherwise every query takes the per-query path regardless.
  bool enable_prefix_cache = true;
  /// Observability (optional, borrowed — the registry/trace must outlive the
  /// server). With `metrics` set, every query records its true service time
  /// into a per-epoch-resolved log-bucketed histogram
  /// `<obs_prefix>/latency_ns/<cached|sharded>/<family>` (split by cache
  /// branch and policy family), publishes record into
  /// `<obs_prefix>/publish_ns`, and counters/gauges under `<obs_prefix>/`
  /// track queries, slots, publishes, and the live epoch. Null (default)
  /// keeps the hot path identical to the uninstrumented server except for
  /// one pointer test per query.
  obs::MetricsRegistry* metrics = nullptr;
  /// With `trace` also set, Update() emits epoch-publish phase spans (shard
  /// re-sort, merge, BuildEpochState, policy swap, RCU publish) and the
  /// query path emits sampled per-query spans (service time, cache branch,
  /// policy family, shard fan-out) at the TraceLog's sample_every stride.
  obs::TraceLog* trace = nullptr;
  /// Metric-name prefix, so several servers (e.g. experiment arms) can share
  /// one registry without colliding.
  std::string obs_prefix = "serve";
};

/// Observability endpoints of one published epoch, resolved once per
/// Update() (registry lookups, family slug, fan-out) and carried by the
/// ServingView so the query path records through plain pointers — and so
/// metric attribution follows the pinned view across policy hot-swaps.
struct ServeObsHooks {
  obs::LatencyHistogram* latency = nullptr;  // service time, nanoseconds
  obs::Counter* queries = nullptr;
  obs::Counter* slots = nullptr;
  obs::TraceLog* trace = nullptr;  // null when tracing is off
  /// Per-context span sampling stride (TraceLog's sample_every); 0 = never.
  uint64_t sample_every = 0;
  /// Span attributes, fixed for the epoch.
  bool cached = false;
  double fanout = 1.0;
  std::string family;
};

/// A batch of same-m queries answered against one pinned ServingView via
/// ShardedRankServer::ServeBatch. Reuse the object across batches — the
/// per-query result vectors keep their capacity.
struct QueryBatch {
  QueryBatch() = default;
  QueryBatch(size_t top_m, size_t count) : m(top_m), results(count) {}

  /// Results requested per query.
  size_t m = 10;
  /// One entry per query in the batch; each is cleared and refilled with the
  /// first min(m, n) slots of that query's fresh realization.
  std::vector<std::vector<uint32_t>> results;

  size_t size() const { return results.size(); }
  void Resize(size_t count) { results.resize(count); }
};

/// Multi-threaded query-serving engine for stochastic ranking: each query
/// receives the first m slots of a *fresh* random realization of the
/// policy's result-list law (the paper's randomized rank promotion is the
/// default family), resolved without materializing the n-page list whenever
/// the policy supports it.
///
/// Concurrency model — single writer, many readers:
///  * Pages are partitioned across S shards. The writer thread calls
///    Update() with new page state; it rebuilds every shard's RankSnapshot
///    off the serving path (optionally in parallel on a ThreadPool) and then
///    publishes all of them as one ServingView in a single atomic swap, so
///    queries are snapshot-isolated across shards: a query never mixes
///    ranking state from two different epochs.
///  * Each serving thread owns a Context (per-thread Rng stream, cached
///    snapshot handle, merge scratch, feedback batch). The query hot path
///    performs one atomic version check and otherwise touches only
///    immutable snapshot data and context-local scratch — no locks.
///  * Observed result clicks flow back through RecordVisit(); the writer
///    drains the aggregated per-page counts with DrainVisits() and folds
///    them into popularity/awareness for the next Update (see
///    serve/feedback.h), closing the simulate → serve loop.
///
/// Distribution guarantee: ServeTopM over S shards is distributed exactly as
/// the first m slots of Ranker::MaterializeList over the same global page
/// state, for every policy family. With the per-epoch prefix cache (default,
/// taken iff the policy's Capabilities() permit it) queries realize against
/// the cached pre-merged global view; with the cache absent the policy
/// realizes directly over the S shard views (for the promotion family: an
/// S-way interleave on the global sort key plus shard-mass-weighted pool
/// draws) — both are precisely the MaterializeList prefix law.
///
/// Amortization layers on the read path: (1) the EpochPrefixCache makes
/// per-query cost O(m) independent of S, (2) ServeBatch answers B queries
/// per view pin, and (3) serve/batch_queue.h pipelines many in-flight
/// queries from arbitrary producer threads into ServeBatch calls.
class ShardedRankServer {
 public:
  /// A serving thread's private state. Create one per worker via
  /// CreateContext(); a Context must not be used by two threads at once.
  class Context {
   public:
    Rng& rng() { return rng_; }
    /// Visits recorded but not yet folded into the shared counters.
    size_t pending_feedback() const { return visit_batch_.size(); }

   private:
    friend class ShardedRankServer;

    SnapshotHandle<ServingView> handle_;
    Rng rng_{0};
    std::vector<uint32_t> visit_batch_;
    /// Queries this context has served with observability on; drives the
    /// deterministic 1-in-sample_every trace sampling stride.
    uint64_t obs_seq_ = 0;
    // Per-query policy scratch and borrowed shard views, reused across
    // queries to avoid allocation.
    PolicyScratch scratch_;
    std::vector<ShardView> views_;
  };

  /// Serves the given ranking-policy family.
  ShardedRankServer(std::shared_ptr<const StochasticRankingPolicy> policy,
                    size_t num_pages, ServeOptions options = {});

  /// Promotion-family convenience: bit-identical (including every Rng
  /// stream) to constructing with MakePromotionPolicy(config).
  ShardedRankServer(RankPromotionConfig config, size_t num_pages,
                    ServeOptions options = {});

  // --- Writer API (one thread at a time) ---

  /// Rebuilds every shard snapshot from global page state and publishes them
  /// as one new epoch. Safe to call while readers are serving. When `pool`
  /// is non-null the per-shard builds run on it in parallel.
  ///
  /// Transactional: the publish either completes (returns true) or rolls
  /// back completely (returns false) — a failure in any build phase (shard
  /// re-sort, merge, epoch state, or an injected fault at the RCU boundary)
  /// leaves the previous epoch serving untouched, the epoch counter
  /// unadvanced, and (for a hot-swap Update) the previous policy in place
  /// for the next attempt. Failed attempts are counted in
  /// `<obs_prefix>/publish_failures` and tracked by epochs_since_publish();
  /// the next successful Update clears the degraded state.
  bool Update(const std::vector<double>& popularity,
              const std::vector<uint8_t>& zero_awareness,
              const std::vector<int64_t>& birth_step,
              ThreadPool* pool = nullptr);

  /// Policy hot-swap: like Update, but the new epoch is ranked and served
  /// under `new_policy` (which becomes the server's policy for every later
  /// Update too). The swap is published atomically with the epoch — the
  /// snapshots, the epoch cache (rebuilt iff the *new* policy's capabilities
  /// allow), and the policy itself swap in as one ServingView, so a query
  /// pinned to the old view keeps realizing under the old policy and a query
  /// pinned to the new one under the new: no query is ever dropped, and none
  /// is served by a policy that mismatches its ranking state. This is the
  /// online A/B ramp primitive the experiment layer (src/exp/) builds on.
  /// Passing null keeps the current policy (== the 4-arg overload).
  /// Transactional like the 4-arg overload; a failed hot-swap publish also
  /// rolls the pending policy back, so no later Update publishes under a
  /// policy that never made it to an epoch.
  bool Update(const std::vector<double>& popularity,
              const std::vector<uint8_t>& zero_awareness,
              const std::vector<int64_t>& birth_step,
              std::shared_ptr<const StochasticRankingPolicy> new_policy,
              ThreadPool* pool = nullptr);

  /// Returns the accumulated per-page visit counts and resets them.
  std::vector<uint64_t> DrainVisits();

  // --- Read path (any number of threads, each with its own Context) ---

  /// Context with its own non-overlapping Rng stream. Thread-safe.
  Context CreateContext() const;

  /// Writes the first min(m, n) slots of a fresh realization into `out`
  /// (cleared first) and returns the count. Returns 0 before the first
  /// Update(). Lock-free in steady state.
  size_t ServeTopM(Context& ctx, size_t m, std::vector<uint32_t>* out) const;

  /// Answers every query in `batch` against one pinned ServingView (a single
  /// version check and epoch-cache lookup amortized over the whole batch)
  /// and returns the total slots served. Each query is an independent fresh
  /// realization drawn from the context's Rng stream in submission order, so
  /// a batch of B is bit-identical to B sequential ServeTopM calls on the
  /// same context — batching changes throughput, never results. Clears every
  /// result vector; before the first Update() all stay empty.
  size_t ServeBatch(Context& ctx, QueryBatch* batch) const;

  /// Records a served-result click for the feedback loop. Batched per
  /// context; call FlushFeedback when a context retires.
  void RecordVisit(Context& ctx, uint32_t page);
  void FlushFeedback(Context& ctx);

  uint64_t epoch() const { return epoch_.load(std::memory_order_acquire); }
  uint64_t total_visits() const {
    return total_visits_.load(std::memory_order_relaxed);
  }

  // --- Degraded-mode accounting (thread-safe; exported to HEALTH) ---

  /// Update() attempts that rolled back, since construction.
  uint64_t publish_failures() const {
    return publish_failures_.load(std::memory_order_relaxed);
  }
  /// Consecutive failed Update() attempts since the last successful publish
  /// — the staleness age of the snapshot still serving, in epochs. 0 when
  /// healthy.
  uint64_t epochs_since_publish() const {
    return failed_since_success_.load(std::memory_order_relaxed);
  }
  /// True while the most recent Update() attempt rolled back — queries are
  /// still answered, from a stale epoch. Cleared by the next clean publish.
  bool degraded() const { return epochs_since_publish() > 0; }
  size_t n() const { return n_; }
  size_t shards() const { return shard_pages_.size(); }
  /// The policy of the most recently *published* epoch (the one queries are
  /// being served under), or the construction policy before the first
  /// Update. Thread-safe, including concurrently with a hot-swap Update —
  /// the returned shared_ptr keeps the policy alive past any swap.
  std::shared_ptr<const StochasticRankingPolicy> policy() const;
  /// Promotion-family configuration; must only be called when the currently
  /// published policy is the promotion family, and the returned reference is
  /// only stable while no hot-swap Update retires that policy.
  const RankPromotionConfig& config() const;

  /// True when the currently published epoch carries an EpochPrefixCache —
  /// i.e. queries are taking the cached O(m) splice rather than the
  /// per-query sharded path. False before the first Update. The observable
  /// the capability-gating tests assert on.
  bool PrefixCacheActive() const;

  /// The observability endpoints this server was constructed with (null when
  /// off). The query workload uses these to derive its latency percentiles
  /// from the server's own per-query histograms.
  obs::MetricsRegistry* metrics() const { return opts_.metrics; }
  obs::TraceLog* trace() const { return opts_.trace; }
  const std::string& obs_prefix() const { return opts_.obs_prefix; }

 private:
  /// One query against an already-pinned view; the shared core of ServeTopM
  /// and ServeBatch (so the two are bit-identical given the same Rng state).
  /// Wraps ServeUninstrumented with the per-query latency record and the
  /// sampled query span when the view carries obs hooks.
  size_t ServeOne(Context& ctx, const ServingView& view, size_t m,
                  std::vector<uint32_t>* out) const;
  size_t ServeUninstrumented(Context& ctx, const ServingView& view, size_t m,
                             std::vector<uint32_t>* out) const;
  /// Builds the epoch's resolved obs endpoints (null when metrics are off).
  std::shared_ptr<const ServeObsHooks> BuildObsHooks(bool cached) const;

  /// Writer-owned: the policy the *next* Update will rank and publish under
  /// (reassigned by a hot-swap Update). Never read on the query path — the
  /// published ServingView carries its own policy, which is what queries
  /// and the thread-safe policy() accessor dispatch through.
  std::shared_ptr<const StochasticRankingPolicy> policy_;
  /// Immutable construction-time policy, the policy() fallback before the
  /// first publish (safe to read concurrently with a first hot-swap Update,
  /// unlike the writer-owned policy_).
  const std::shared_ptr<const StochasticRankingPolicy> initial_policy_;
  size_t n_;
  ServeOptions opts_;
  std::vector<std::vector<uint32_t>> shard_pages_;  // page ids per shard

  SnapshotStore<ServingView> store_;
  std::atomic<uint64_t> epoch_{0};
  Rng writer_rng_;

  /// Degraded-mode accounting, written by the writer thread, read anywhere.
  std::atomic<uint64_t> publish_failures_{0};
  std::atomic<uint64_t> failed_since_success_{0};
  /// Registry endpoints for the failure path, resolved at construction so
  /// they are scrapeable before (and without) any failure.
  obs::Counter* publish_failures_ctr_ = nullptr;
  obs::Gauge* degraded_gauge_ = nullptr;
  obs::Gauge* stale_epochs_gauge_ = nullptr;

  mutable std::atomic<uint64_t> context_seq_{0};

  mutable std::mutex feedback_mutex_;
  std::vector<uint64_t> visit_counts_;
  std::atomic<uint64_t> total_visits_{0};
};

}  // namespace randrank

#endif  // RANDRANK_SERVE_SHARDED_RANK_SERVER_H_
