#ifndef RANDRANK_SERVE_FEEDBACK_H_
#define RANDRANK_SERVE_FEEDBACK_H_

#include <cstdint>
#include <vector>

#include "core/community.h"
#include "util/rng.h"

namespace randrank {

/// The mutable page state the serving loop feeds back into: the same
/// popularity/awareness signal AgentSimulator maintains, in the layout
/// ShardedRankServer::Update consumes. The serve loop alternates
///   serve queries -> DrainVisits -> FoldVisits -> server.Update(state)
/// which closes the simulate → serve loop: observed clicks change awareness,
/// awareness changes popularity, popularity changes the next snapshot.
struct ServingPageState {
  size_t users = 0;
  std::vector<double> quality;         // fixed per page
  std::vector<uint32_t> aware;         // aware users per page (<= users)
  std::vector<double> popularity;      // quality * aware / users
  std::vector<uint8_t> zero_awareness; // 1 while no user has seen the page
  std::vector<int64_t> birth_step;

  size_t n() const { return quality.size(); }
  /// Pages no user is aware of yet (the selective rule's pool).
  size_t ZeroAwarenessPages() const;
};

/// Fresh community: page qualities from the paper's stationary power-law
/// quantiles (assigned in random order so quality is independent of page id
/// and thus of shard placement), nobody aware of anything, all pages born at
/// step 0.
ServingPageState MakeServingPageState(const CommunityParams& params, Rng& rng);

/// Folds one drained batch of per-page visit counts into awareness and
/// popularity, using the simulator's batched conversion model: V uniform
/// visitors convert each of the (u - A) unaware users with probability
/// 1 - (1 - 1/u)^V; the expected number of conversions is applied with
/// stochastic rounding (AgentSimulator::VisitPageBatch's update, without the
/// monitored split — the serving engine idealizes the monitored sample as
/// representative, paper Section 3.1).
void FoldVisits(const std::vector<uint64_t>& visits, ServingPageState* state,
                Rng& rng);

}  // namespace randrank

#endif  // RANDRANK_SERVE_FEEDBACK_H_
