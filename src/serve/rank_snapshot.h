#ifndef RANDRANK_SERVE_RANK_SNAPSHOT_H_
#define RANDRANK_SERVE_RANK_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/policy/stochastic_ranking_policy.h"
#include "core/ranking_policy.h"
#include "util/rng.h"

namespace randrank {

/// An immutable snapshot of one shard's ranking state: the deterministic
/// order Ld (best first, with the sort keys kept alongside for cross-shard
/// merging) plus the promotion pool Pp. Built off the serving path by the
/// writer, published via SnapshotStore, and shared read-only by every worker
/// thread — queries against a snapshot take no locks and perform no writes,
/// so a snapshot may be read concurrently by any number of threads while the
/// writer assembles its successor.
struct RankSnapshot {
  /// Monotone publish generation; every shard snapshot in one ServingView
  /// carries the same epoch.
  uint64_t epoch = 0;
  /// The policy this snapshot was partitioned under.
  std::shared_ptr<const StochasticRankingPolicy> policy;

  /// Deterministically ranked pages of this shard, best first (global ids).
  std::vector<uint32_t> det;
  /// Sort keys of `det`, kept so a cross-shard merge can interleave several
  /// shards' lists exactly as one global sort would have (and so weighted
  /// families can score their draws).
  std::vector<double> det_score;
  std::vector<int64_t> det_birth;
  /// Stochastic pool of this shard (unshuffled, global ids).
  std::vector<uint32_t> pool;
  /// Policy-owned per-epoch state over this shard's own view (Build calls
  /// the policy's BuildEpochState hook), reused by every TopM/PageAtRank
  /// against this snapshot. Null for stateless families, and when the
  /// builder opted out (ShardedRankServer does — see Build). The *global*
  /// cross-shard state lives with the EpochPrefixCache, not here.
  std::shared_ptr<const PolicyEpochState> epoch_state;

  size_t n() const { return det.size() + pool.size(); }

  /// This shard's state as a borrowed policy view (valid while the snapshot
  /// lives — snapshots are immutable after Build).
  ShardView AsView() const {
    return {det.data(),  det_score.data(), det_birth.data(),
            det.size(),  pool.data(),      pool.size()};
  }

  /// First min(m, n()) slots of a fresh random realization of this shard's
  /// merged list, appended to `out`; O(m) expected time for policies with
  /// the lazy_prefix capability.
  size_t TopM(size_t m, Rng& rng, std::vector<uint32_t>* out) const;

  /// Page at `rank` (1-based) in an independent realization.
  uint32_t PageAtRank(size_t rank, Rng& rng) const;

  /// Builds a snapshot for the shard owning `pages` from global page state,
  /// mirroring Ranker::Update: pool membership per the policy's hook, then
  /// the remainder sorted by (popularity desc, birth asc, id asc). `rng` is
  /// only drawn from when the policy's PoolMembership draws (the uniform
  /// promotion rule; membership is re-sampled per build, as in Ranker).
  /// `build_epoch_state` controls whether the per-shard BuildEpochState
  /// product is materialized: callers that serve this snapshot directly
  /// (TopM/PageAtRank) want it; ShardedRankServer passes false because its
  /// queries only ever consume the EpochPrefixCache's *global* state (or
  /// none on the per-query path), so S per-shard alias tables per epoch
  /// would be pure waste.
  static std::shared_ptr<const RankSnapshot> Build(
      std::shared_ptr<const StochasticRankingPolicy> policy, uint64_t epoch,
      const std::vector<uint32_t>& pages, const std::vector<double>& popularity,
      const std::vector<uint8_t>& zero_awareness,
      const std::vector<int64_t>& birth_step, Rng& rng,
      bool build_epoch_state = true);

  /// Promotion-family convenience, bit-identical to the policy overload
  /// with MakePromotionPolicy(config).
  static std::shared_ptr<const RankSnapshot> Build(
      const RankPromotionConfig& config, uint64_t epoch,
      const std::vector<uint32_t>& pages, const std::vector<double>& popularity,
      const std::vector<uint8_t>& zero_awareness,
      const std::vector<int64_t>& birth_step, Rng& rng);
};

/// One step of the S-way deterministic merge: the index of the shard whose
/// det-list head (at its cursor) is next under the global sort key
/// RankOrderBefore, or `shards` when every list is exhausted. The single
/// implementation of the merge step — the per-query uncached serve path and
/// the per-epoch EpochPrefixCache::Build must interleave identically or the
/// cached order silently diverges from the served one.
size_t BestDetHead(const RankSnapshot* const* snaps, const size_t* cursors,
                   size_t shards);

struct EpochPrefixCache;
struct ServeObsHooks;

/// One published generation of the whole server: every shard's snapshot,
/// swapped in atomically as a unit so a query never observes shards from two
/// different epochs (cross-shard snapshot isolation).
struct ServingView {
  uint64_t epoch = 0;
  /// The policy this epoch was ranked and is served under. Queries dispatch
  /// through it — never through server-level mutable state — so a policy
  /// hot-swap (ShardedRankServer::Update with a new policy) is exactly as
  /// atomic as the epoch publish itself: every query realizes under the one
  /// policy its pinned view was built with, even while the writer publishes
  /// a different one. Always equals shards[s]->policy for every shard.
  std::shared_ptr<const StochasticRankingPolicy> policy;
  std::vector<std::shared_ptr<const RankSnapshot>> shards;
  /// Per-epoch materialization of the cross-shard deterministic merge order
  /// and global pool (see serve/epoch_prefix_cache.h). Built by the writer
  /// at publish time; null when the server runs with the cache disabled.
  /// Immutable after publish and invalidated only by the next epoch's view.
  std::shared_ptr<const EpochPrefixCache> cache;
  /// Observability endpoints resolved at publish time (the per-query
  /// latency histogram for this epoch's cache branch + policy family, the
  /// trace sink, span attributes — see ServeObsHooks in
  /// serve/sharded_rank_server.h). Carried by the view, not the server, so
  /// a query pinned to an old epoch during a hot-swap records into the
  /// metrics that match what actually served it. Null when the server runs
  /// without observability — the hot path then pays one branch.
  std::shared_ptr<const ServeObsHooks> obs;

  size_t n() const;
};

}  // namespace randrank

#endif  // RANDRANK_SERVE_RANK_SNAPSHOT_H_
