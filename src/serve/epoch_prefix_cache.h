#ifndef RANDRANK_SERVE_EPOCH_PREFIX_CACHE_H_
#define RANDRANK_SERVE_EPOCH_PREFIX_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/rank_snapshot.h"

namespace randrank {

/// Per-epoch materialization of everything in a ServingView that is
/// invariant across queries: the cross-shard deterministic merge order, the
/// concatenated global pool, and — via the policy's BuildEpochState hook —
/// whatever per-epoch serving state the family derives from that merged
/// view (Plackett-Luce's alias table, epsilon-tail's cached head; the
/// promotion family needs nothing beyond the merged view itself).
///
/// Within one snapshot epoch every query realizes over the *same* global
/// deterministic order, pool, and policy state; only the per-query draws
/// are fresh randomness. Re-running the S-way merge (and any per-epoch
/// policy precomputation) per query therefore redoes identical work on the
/// hot path. This cache runs all of it once, off the serving path, when the
/// writer publishes the epoch; per-query work collapses to the policy's
/// single-view ServePrefix against `AsView()` + `policy_state` — for the
/// promotion family a protected-prefix copy plus an O(m) randomized splice,
/// for Plackett-Luce O(m) expected alias draws — independent of the shard
/// count either way.
///
/// Lifecycle / invalidation: a cache is built by ShardedRankServer::Update
/// and owned by the ServingView it describes, so it is immutable after
/// publish, shared lock-free by all serving threads, and invalidated the
/// only way a view itself is — by the atomic publish of the next epoch's
/// view (readers pick up the new cache on their next version check; the old
/// one is reclaimed with its view once the last reader moves on).
struct EpochPrefixCache {
  /// Epoch of the ServingView this cache was built from.
  uint64_t epoch = 0;
  /// Global deterministic merge order (all shards interleaved by the global
  /// sort key RankOrderBefore), best first. Its leading min(k-1, |det|)
  /// entries are the protected prefix — the serve path (MergePrefixCached)
  /// derives that bound from the config, the one source of truth for k.
  std::vector<uint32_t> det;
  /// Sort keys of `det`, carried through the merge so cache-capable
  /// weighted families see a complete global view.
  std::vector<double> det_score;
  /// Global stochastic pool (all shards concatenated, unshuffled; order is
  /// irrelevant because every draw path shuffles uniformly).
  std::vector<uint32_t> pool;
  /// The policy's opaque per-epoch state over the merged global view
  /// (BuildEpochState product); handed back to ServePrefix on every cached
  /// query. Null for families whose epoch-invariant state is the merged
  /// view alone (promotion).
  std::shared_ptr<const PolicyEpochState> policy_state;

  size_t n() const { return det.size() + pool.size(); }

  /// The cached global state as a borrowed single policy view. `det_birth`
  /// is null: birth steps only break ties while merging, which already
  /// happened when this cache was built.
  ShardView AsView() const {
    return {det.data(), det_score.data(), nullptr,
            det.size(), pool.data(),      pool.size()};
  }

  /// Wall-clock split of one Build call, for the publish-phase trace spans:
  /// the S-way merge + pool concatenation vs the policy's BuildEpochState.
  struct BuildPhaseTimings {
    double merge_us = 0.0;
    double epoch_state_us = 0.0;
  };

  /// Runs the S-way deterministic merge over `view`'s shard snapshots and
  /// concatenates their pools. O(n·S) time, O(n) memory; called once per
  /// publish by the writer, never on the query path. With `timings` non-null
  /// the two build phases are clocked (a few extra clock reads; pass null
  /// when nothing consumes them).
  static std::shared_ptr<const EpochPrefixCache> Build(
      const ServingView& view, BuildPhaseTimings* timings = nullptr);
};

}  // namespace randrank

#endif  // RANDRANK_SERVE_EPOCH_PREFIX_CACHE_H_
