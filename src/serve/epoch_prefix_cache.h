#ifndef RANDRANK_SERVE_EPOCH_PREFIX_CACHE_H_
#define RANDRANK_SERVE_EPOCH_PREFIX_CACHE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/rank_snapshot.h"

namespace randrank {

/// Per-epoch materialization of everything in a ServingView that is
/// invariant across queries: the cross-shard deterministic merge order (and
/// with it the protected top k-1 prefix) and the concatenated global
/// promotion pool.
///
/// Within one snapshot epoch every query interleaves the *same* global
/// deterministic order and draws uniformly from the *same* global pool; only
/// the Bernoulli tail coins and the pool permutation are per-query
/// randomness. Re-running the S-way merge per query (the PR-1 serving path)
/// therefore redoes identical work on the hot path. This cache runs that
/// merge once, off the serving path, when the writer publishes the epoch;
/// per-query work collapses to MergePrefixCached — a protected-prefix copy
/// plus an O(m) randomized splice, independent of the shard count.
///
/// Lifecycle / invalidation: a cache is built by ShardedRankServer::Update
/// and owned by the ServingView it describes, so it is immutable after
/// publish, shared lock-free by all serving threads, and invalidated the
/// only way a view itself is — by the atomic publish of the next epoch's
/// view (readers pick up the new cache on their next version check; the old
/// one is reclaimed with its view once the last reader moves on).
struct EpochPrefixCache {
  /// Epoch of the ServingView this cache was built from.
  uint64_t epoch = 0;
  /// Global deterministic merge order (all shards interleaved by the global
  /// sort key RankOrderBefore), best first. Its leading min(k-1, |det|)
  /// entries are the protected prefix — the serve path (MergePrefixCached)
  /// derives that bound from the config, the one source of truth for k.
  std::vector<uint32_t> det;
  /// Sort keys of `det`, carried through the merge so cache-capable
  /// weighted families see a complete global view.
  std::vector<double> det_score;
  /// Global stochastic pool (all shards concatenated, unshuffled; order is
  /// irrelevant because every draw path shuffles uniformly).
  std::vector<uint32_t> pool;

  size_t n() const { return det.size() + pool.size(); }

  /// The cached global state as a borrowed single policy view. `det_birth`
  /// is null: birth steps only break ties while merging, which already
  /// happened when this cache was built.
  ShardView AsView() const {
    return {det.data(), det_score.data(), nullptr,
            det.size(), pool.data(),      pool.size()};
  }

  /// Runs the S-way deterministic merge over `view`'s shard snapshots and
  /// concatenates their pools. O(n·S) time, O(n) memory; called once per
  /// publish by the writer, never on the query path.
  static std::shared_ptr<const EpochPrefixCache> Build(const ServingView& view);
};

}  // namespace randrank

#endif  // RANDRANK_SERVE_EPOCH_PREFIX_CACHE_H_
