#include "exp/page_lifecycle.h"

#include <algorithm>
#include <cassert>

namespace randrank {

PageLifecycle::PageLifecycle(const CommunityParams& community,
                             double epochs_per_day)
    : n_(community.n),
      deaths_per_epoch_(community.lambda() * static_cast<double>(community.n) /
                        std::max(epochs_per_day, 1e-12)) {
  assert(community.Valid());
  assert(epochs_per_day > 0.0);
}

std::vector<uint32_t> PageLifecycle::DrawDeaths(Rng& rng) const {
  const uint64_t deaths = rng.NextPoisson(deaths_per_epoch_);
  std::vector<uint32_t> dead;
  dead.reserve(deaths);
  for (uint64_t d = 0; d < deaths; ++d) {
    dead.push_back(static_cast<uint32_t>(rng.NextIndex(n_)));
  }
  // A page dies at most once per epoch; the Poisson process puts repeat
  // deaths of one id in the same epoch at O((lambda/n)^2) — drop them
  // rather than double-count a rebirth.
  std::sort(dead.begin(), dead.end());
  dead.erase(std::unique(dead.begin(), dead.end()), dead.end());
  return dead;
}

void PageLifecycle::ApplyDeaths(const std::vector<uint32_t>& deaths,
                                int64_t epoch, ServingPageState* state) {
  for (const uint32_t page : deaths) {
    assert(page < state->n());
    state->aware[page] = 0;
    state->popularity[page] = 0.0;
    state->zero_awareness[page] = 1;
    state->birth_step[page] = epoch;
  }
}

}  // namespace randrank
