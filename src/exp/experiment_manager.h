#ifndef RANDRANK_EXP_EXPERIMENT_MANAGER_H_
#define RANDRANK_EXP_EXPERIMENT_MANAGER_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/community.h"
#include "core/policy/stochastic_ranking_policy.h"
#include "exp/live_metrics.h"
#include "exp/page_lifecycle.h"
#include "exp/traffic_split.h"
#include "serve/batch_queue.h"
#include "serve/feedback.h"
#include "serve/sharded_rank_server.h"
#include "util/rng.h"

namespace randrank {

/// One experiment arm: a human-readable name plus the ranking policy it
/// serves. The policy may be replaced mid-run via
/// ExperimentManager::SwapPolicy (published atomically with the arm's next
/// epoch — the serve layer's hot-swap).
struct ArmSpec {
  std::string name;
  std::shared_ptr<const StochasticRankingPolicy> policy;
};

struct ExperimentOptions {
  /// Traffic fractions per arm. Leave `fractions` empty for an even split.
  TrafficSplit split;
  /// Serving shards per arm's ShardedRankServer.
  size_t shards = 4;
  /// Results per query (the served "page one").
  size_t top_m = 10;
  /// Queries routed across the arms per epoch.
  size_t queries_per_epoch = 10000;
  /// Serving worker threads per epoch (each owns one context per arm).
  size_t threads = 1;
  /// Rank->visit bias exponent of the click model (paper Eq. 4).
  double rank_bias_exponent = 1.5;
  /// Per-arm ServeOptions::enable_prefix_cache.
  bool enable_prefix_cache = true;
  /// Route each arm's queries through a per-arm BatchQueue (async MPSC
  /// consumer) instead of calling ServeTopM inline: results come from the
  /// queue consumer's own serving context, so policy hot-swaps are exercised
  /// under the async consumer, and each arm's queue occupancy lands in the
  /// registry under "exp/arm:<name>/queue/*". Workers keep a bounded
  /// in-flight window of futures and still record clicks through their own
  /// contexts (the queue's feedback contract). Realized traffic differs
  /// from the sync path (the consumer owns the serving Rng streams) but
  /// follows the same law.
  bool async_serving = false;
  /// BatchQueueOptions::max_batch / max_delay_us for the per-arm queues.
  size_t async_max_batch = 32;
  uint64_t async_max_delay_us = 0;
  /// Run the shared page-lifecycle churn each epoch.
  bool churn = true;
  /// Fraction of pages fully discovered (everyone aware, popularity ==
  /// quality) at t=0 — a mature engine's warm start, identical across arms.
  /// Leaves the experiment's undiscovered mass to the remaining fraction
  /// plus the churn-born newborns, which is what live discovery-speed
  /// comparisons are about. 0 reproduces the cold-start community.
  double prediscovered_fraction = 0.0;
  /// Epoch cadence for the churn rate (see PageLifecycle).
  double epochs_per_day = 1.0;
  /// Observability (optional, borrowed): one registry/trace shared by every
  /// arm. Each arm's server instruments itself under the prefix
  /// "exp/arm:<name>" (per-arm serve histograms + publish spans), and
  /// RunEpoch publishes each arm's LiveMetrics snapshot as
  /// "exp/arm:<name>/live/<field>" gauges (the /live segment keeps them
  /// clear of the serve layer's counters under the same prefix) plus the
  /// live split fraction as "exp/arm:<name>/split" after absorbing the
  /// epoch.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceLog* trace = nullptr;
  uint64_t seed = 0xab5eedULL;
};

/// Online A/B experimentation over the serving engine: live query traffic is
/// split across N arms by deterministic user-id hash bucketing
/// (HashBucketer), each arm serving the SAME community under its own
/// StochasticRankingPolicy through its own ShardedRankServer. Every epoch
/// the manager
///
///   1. serves `queries_per_epoch` rank-biased queries, routing each user's
///      traffic to their bucketed arm (worker threads, deterministic
///      query->worker partition, so runs are reproducible);
///   2. absorbs per-worker metric shards into each arm's LiveMetrics
///      (click-QPC, tail share, distinct pages, impression Gini/entropy,
///      newborn time-to-first-click);
///   3. folds each arm's observed clicks into ITS OWN awareness/popularity
///      state (arms are causally isolated: arm A's discoveries never leak
///      into arm B's ranking signal — the counterfactual the paper's
///      comparison needs);
///   4. applies ONE shared churn draw to every arm (common random numbers:
///      the same pages are born everywhere at the same epoch, so
///      discovery-speed comparisons measure the policies, not churn luck);
///   5. stamps the epoch's churn births and ends the epoch; the NEXT
///      RunEpoch opens by publishing every arm's new epoch — applying any
///      pending SwapPolicy atomically with that publish, and any pending
///      SetSplit to the router, before any of that epoch's traffic — which
///      is the online ramp loop: raise the treatment fraction between
///      epochs, swap policy parameters mid-run, without ever dropping or
///      misrouting an in-flight query, and with every epoch's reported
///      metrics attributed to exactly the configuration that served it.
///
/// Driver-thread model: construction, RunEpoch, SwapPolicy, SetSplit, and
/// the accessors belong to one driver thread (RunEpoch spawns and joins its
/// own serving workers internally). The hot-swap itself is safe under
/// concurrent serving — that is the serve layer's contract, exercised
/// directly by tests/exp_test.cc under TSan.
class ExperimentManager {
 public:
  ExperimentManager(const CommunityParams& community, std::vector<ArmSpec> arms,
                    ExperimentOptions options = {});

  /// Opens the next epoch (publishing every arm, with pending swaps/splits
  /// applied first), serves its split traffic, and closes it (steps 1-5
  /// above). Epochs are numbered from 1 (== every arm server's epoch()).
  void RunEpoch();

  /// Schedules `policy` to be published on `arm` at the start of the next
  /// RunEpoch (the serve layer's atomic hot-swap): that whole epoch is
  /// served — and reported — under the new policy. The arm's spec reflects
  /// it once published.
  void SwapPolicy(size_t arm, std::shared_ptr<const StochasticRankingPolicy> policy);

  /// Schedules new traffic fractions from the next RunEpoch on (the ramp
  /// primitive). Must keep the arm count. Assignment is hash-stable: units
  /// keep their arm wherever the new boundaries retain their interval (see
  /// HashBucketer's monotone-ramp property).
  void SetSplit(TrafficSplit split);

  size_t arms() const { return arm_states_.size(); }
  int64_t epoch() const { return epoch_; }
  const ArmSpec& arm_spec(size_t arm) const;
  const ShardedRankServer& arm_server(size_t arm) const;
  const ServingPageState& arm_page_state(size_t arm) const;
  LiveMetricsSnapshot ArmSnapshot(size_t arm) const;
  /// The reward summary of `arm`'s most recently run epoch (see
  /// LiveMetrics::EpochRewardSummary) — the observation the adaptive
  /// best-arm layer (src/bai/) feeds its scheduler after each RunEpoch.
  EpochReward ArmEpochReward(size_t arm, double cvar_alpha = 0.25) const;
  /// Per-newborn time-to-first-click samples (censored at `censor_epochs`),
  /// the input to the arm-vs-arm MannWhitneyZ discovery test.
  std::vector<double> ArmTtfcSamples(size_t arm, double censor_epochs) const;
  const HashBucketer& bucketer() const { return bucketer_; }
  /// Pages every arm shares: true quality by page id (identical across arms
  /// by construction).
  const std::vector<double>& quality() const;

  /// Writes one JSON line per arm for the epoch just run:
  ///   {"arm":"treatment","policy":"selective(r=0.10,k=2)","epoch":4,
  ///    "split":0.5,"epoch_queries":...,"click_qpc":...,...}
  /// Machine-readable live monitoring, same spirit as the bench JSONL.
  void EmitEpochJsonl(std::ostream& os) const;

 private:
  struct ArmState {
    ArmSpec spec;
    std::unique_ptr<ShardedRankServer> server;
    ServingPageState state;
    LiveMetrics metrics;
    std::shared_ptr<const StochasticRankingPolicy> pending_policy;
    Rng fold_rng{0};

    ArmState(ArmSpec s, std::unique_ptr<ShardedRankServer> srv,
             ServingPageState st, size_t n)
        : spec(std::move(s)),
          server(std::move(srv)),
          state(std::move(st)),
          metrics(n) {}
  };

  void ServeEpochTraffic();
  void PublishEpoch();

  CommunityParams community_;
  ExperimentOptions opts_;
  HashBucketer bucketer_;
  TrafficSplit pending_split_;
  bool has_pending_split_ = false;
  std::vector<ArmState> arm_states_;
  /// Async mode: one BatchQueue per arm (same index), consumers running for
  /// the manager's whole life so hot-swaps publish under live async serving.
  /// Declared after arm_states_ so the queues stop before the servers die.
  std::vector<std::unique_ptr<BatchQueue>> arm_queues_;
  PageLifecycle lifecycle_;
  Rng churn_rng_{0};
  uint64_t click_seed_ = 0;
  int64_t epoch_ = 0;
  // Persistent per-worker serving state, indexed [worker][arm]: contexts
  // keep their Rng streams across epochs; shards are reset per epoch;
  // worker_rngs_ draw each query's user and clicked rank.
  std::vector<std::vector<ShardedRankServer::Context>> worker_contexts_;
  std::vector<std::vector<LiveMetrics::Shard>> worker_shards_;
  std::vector<Rng> worker_rngs_;
};

}  // namespace randrank

#endif  // RANDRANK_EXP_EXPERIMENT_MANAGER_H_
