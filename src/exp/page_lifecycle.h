#ifndef RANDRANK_EXP_PAGE_LIFECYCLE_H_
#define RANDRANK_EXP_PAGE_LIFECYCLE_H_

#include <cstdint>
#include <vector>

#include "core/community.h"
#include "serve/feedback.h"
#include "util/rng.h"

namespace randrank {

/// Online page churn for long-running serving: the simulator's
/// ApplyChurn-style birth/retirement process (paper Section 5.1 — Poisson
/// page deaths at rate lambda = 1/lifetime, each dead page immediately
/// replaced by a newborn occupying the same id and quality slot, so the
/// stationary quality distribution is preserved) lifted out of
/// AgentSimulator so the serve loop can run it per epoch.
///
/// The experiment layer draws ONE churn realization per epoch and applies
/// it to EVERY arm's page state: the same pages are born at the same time
/// in all arms (common random numbers), so per-arm discovery metrics —
/// median time-to-first-click of newborn pages above all — compare the
/// policies, not the luck of different churn draws.
class PageLifecycle {
 public:
  /// `epochs_per_day` converts the community's per-day retirement rate to
  /// the serve loop's epoch cadence (2.0 = two epochs per simulated day,
  /// so each epoch carries half a day's churn).
  PageLifecycle(const CommunityParams& community, double epochs_per_day = 1.0);

  /// Draws one epoch's deaths: Poisson(lambda * n / epochs_per_day) page
  /// ids, sampled uniformly (a page can die at most once per epoch;
  /// duplicates are dropped, matching the per-page-at-most-one-death
  /// granularity of the simulator at daily rates).
  std::vector<uint32_t> DrawDeaths(Rng& rng) const;

  /// Applies one death list to an arm's page state: the dead page's id is
  /// reborn as a fresh page — awareness zeroed everywhere, popularity zero,
  /// zero_awareness flag raised, birth stamped `epoch` — while its quality
  /// slot is kept (stationary quality distribution, as in
  /// AgentSimulator::ApplyChurn).
  static void ApplyDeaths(const std::vector<uint32_t>& deaths, int64_t epoch,
                          ServingPageState* state);

  double deaths_per_epoch() const { return deaths_per_epoch_; }

 private:
  size_t n_;
  double deaths_per_epoch_;
};

}  // namespace randrank

#endif  // RANDRANK_EXP_PAGE_LIFECYCLE_H_
