#ifndef RANDRANK_EXP_LIVE_METRICS_H_
#define RANDRANK_EXP_LIVE_METRICS_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "serve/feedback.h"

namespace randrank {

namespace obs {
class MetricsRegistry;
}  // namespace obs

/// Point-in-time read of one arm's LiveMetrics (cumulative over the run,
/// plus the current epoch's traffic counts). The fields the paper's
/// comparative claim needs, measured on live serving traffic instead of the
/// offline simulator:
///   * click-QPC — expected true quality per click (paper Section 6.3's
///     quality-per-click, over real served clicks);
///   * tail share — fraction of clicks spent on pages undiscovered at serve
///     time (the exploration budget actually paid);
///   * distinct pages / impression Gini / impression entropy — how broadly
///     the policy spreads exposure (entrenchment shows up as high Gini, low
///     entropy, few distinct pages);
///   * newborn time-to-first-click — epochs from a churn birth to the
///     page's first click in THIS arm; the discovery-speed statistic the
///     randomized-vs-deterministic live comparison is decided on.
struct LiveMetricsSnapshot {
  // Traffic (cumulative).
  uint64_t queries = 0;
  uint64_t slots_served = 0;
  uint64_t clicks = 0;
  // Clicked-quality metrics (cumulative).
  double click_qpc = 0.0;
  double tail_share = 0.0;
  // Exposure spread (cumulative impressions per page).
  size_t distinct_pages = 0;
  double impression_gini = 0.0;
  double impression_entropy_bits = 0.0;
  // Newborn discovery (pages born by churn during the run).
  size_t newborn_births = 0;
  size_t newborn_clicked = 0;
  /// Median epochs from birth to first click over *discovered* newborns
  /// (0 when none clicked yet). For censoring-aware comparisons use
  /// LiveMetrics::TtfcSamples instead.
  double ttfc_median_epochs = 0.0;
  // Current epoch's traffic (reset by BeginEpoch).
  uint64_t epoch_queries = 0;
  uint64_t epoch_clicks = 0;
};

/// One epoch's clicked-quality reward summary — the observation an adaptive
/// (best-arm identification) scheduler consumes per arm per epoch. All
/// fields cover ONLY the epoch since the last BeginEpoch.
struct EpochReward {
  uint64_t queries = 0;
  uint64_t clicks = 0;
  /// Sum and sum-of-squares of clicked true qualities (for posterior /
  /// variance estimates without re-walking samples).
  double quality_sum = 0.0;
  double quality_sq_sum = 0.0;
  /// Mean clicked quality — the epoch's click-QPC; 0 with no clicks.
  double mean = 0.0;
  /// Conditional value-at-risk of clicked quality: the mean of the worst
  /// ceil(alpha * clicks) clicked qualities this epoch (0 with no clicks).
  /// The guardrail statistic — a policy can look fine on mean QPC while
  /// serving a brutal worst tail; CVaR catches that.
  double cvar = 0.0;
};

/// Per-arm metrics accumulator for live experiments.
///
/// Threading model: serving workers record into worker-local `Shard`s (no
/// synchronization on the query path); the experiment manager absorbs the
/// shards at epoch end, on the writer thread, resolving qualities,
/// undiscovered flags, and newborn first-clicks against the arm's page
/// state — which is constant throughout an epoch's serving, because
/// feedback folds and churn happen only at epoch boundaries.
class LiveMetrics {
 public:
  /// Worker-local accumulation for one epoch of one arm's traffic: raw
  /// impression counts and clicked page ids, resolved to metrics at absorb
  /// time. Reused across epochs via Reset().
  struct Shard {
    explicit Shard(size_t n) : impressions(n, 0) {}

    void RecordResult(const uint32_t* results, size_t count) {
      ++queries;
      for (size_t i = 0; i < count; ++i) ++impressions[results[i]];
      slots += count;
    }
    void RecordClick(uint32_t page) { clicked.push_back(page); }
    void Reset() {
      std::fill(impressions.begin(), impressions.end(), 0u);
      clicked.clear();
      queries = 0;
      slots = 0;
    }

    std::vector<uint32_t> impressions;
    std::vector<uint32_t> clicked;
    uint64_t queries = 0;
    uint64_t slots = 0;
  };

  explicit LiveMetrics(size_t n);

  /// Starts a new epoch: zeroes the epoch-scoped counters. `epoch` is the
  /// serving epoch whose traffic will be absorbed next.
  void BeginEpoch(int64_t epoch);

  /// Folds one worker shard into the arm totals. `state` must be the page
  /// state the epoch was SERVED under (pre-fold, pre-churn): clicked
  /// qualities come from state.quality, the undiscovered flag from
  /// state.zero_awareness, and newborn first-clicks are resolved against
  /// the births recorded so far.
  void Absorb(const Shard& shard, const ServingPageState& state);

  /// Registers churn births stamped at `epoch`: each page starts (or
  /// restarts) a time-to-first-click clock. A reborn page's previous clock
  /// is finalized as censored if it never got clicked.
  void RecordBirths(const std::vector<uint32_t>& born, int64_t epoch);

  LiveMetricsSnapshot Snapshot() const;

  /// Reward summary of the CURRENT epoch's absorbed traffic (call after the
  /// epoch's shards were absorbed, before the next BeginEpoch). `cvar_alpha`
  /// in (0, 1] selects the worst-tail share for EpochReward::cvar.
  EpochReward EpochRewardSummary(double cvar_alpha) const;

  /// Publishes the current Snapshot() into `registry` as gauges named
  /// `<prefix>/<field>` (click_qpc, tail_share, impression_gini, ...), so an
  /// arm's live health rides the same exporter feed as the serve-layer
  /// metrics. Driver-thread only, like every other mutator here; typically
  /// called once per epoch by ExperimentManager::RunEpoch.
  void PublishTo(obs::MetricsRegistry& registry,
                 const std::string& prefix) const;

  /// Time-to-first-click samples over every newborn life tracked so far:
  /// discovered newborns contribute their real birth->first-click epochs;
  /// lives cut short unclicked by a rebirth contribute their OWN censoring
  /// time (the epochs they were actually observable — crediting them the
  /// full horizon would overstate how slow the arm was); still-open
  /// unclicked lives contribute the `censor_epochs` horizon (use the run
  /// length + 1). Treating a censored life's "at least c" as "exactly c"
  /// is conservative for the discovery comparison — it makes the
  /// slower-discovering arm look faster — so a significant MannWhitneyZ on
  /// these samples understates, never overstates, the separation.
  std::vector<double> TtfcSamples(double censor_epochs) const;

  size_t n() const { return impressions_.size(); }

 private:
  // Cumulative exposure + click accumulators.
  std::vector<uint64_t> impressions_;
  uint64_t queries_ = 0;
  uint64_t slots_served_ = 0;
  uint64_t clicks_ = 0;
  double click_quality_sum_ = 0.0;
  uint64_t undiscovered_clicks_ = 0;
  // Newborn discovery clocks. birth_epoch_[p] < 0 means page p is an
  // initial page (never churned) and is not tracked.
  std::vector<int64_t> birth_epoch_;
  std::vector<uint8_t> newborn_clicked_;
  std::vector<double> ttfc_epochs_;   // realized samples (discovered)
  /// Observable lifetimes of lives closed unclicked by a rebirth (their
  /// per-life censoring times, consumed by TtfcSamples).
  std::vector<double> censored_life_epochs_;
  size_t tracked_newborns_ = 0;
  // Epoch-scoped.
  int64_t epoch_ = 0;
  uint64_t epoch_queries_ = 0;
  uint64_t epoch_clicks_ = 0;
  /// The epoch's clicked true qualities (reset by BeginEpoch): the sample
  /// the adaptive layer's reward posterior and CVaR guardrail read.
  std::vector<double> epoch_click_qualities_;
};

}  // namespace randrank

#endif  // RANDRANK_EXP_LIVE_METRICS_H_
