#include "exp/traffic_split.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "util/rng.h"

namespace randrank {

TrafficSplit TrafficSplit::Even(size_t arms, uint64_t salt) {
  TrafficSplit split;
  split.salt = salt;
  split.fractions.assign(std::max<size_t>(1, arms),
                         1.0 / static_cast<double>(std::max<size_t>(1, arms)));
  return split;
}

bool TrafficSplit::Valid() const {
  if (fractions.empty()) return false;
  double total = 0.0;
  for (const double f : fractions) {
    if (!(f >= 0.0) || f > 1.0) return false;
    total += f;
  }
  return std::abs(total - 1.0) <= 1e-9;
}

HashBucketer::HashBucketer(TrafficSplit split) : split_(std::move(split)) {
  assert(split_.Valid());
  cumulative_.reserve(split_.fractions.size());
  double running = 0.0;
  for (const double f : split_.fractions) {
    running += f;
    cumulative_.push_back(running);
  }
  // Float summation drift must not orphan the top of the hash interval —
  // the last arm's boundary is exactly 1 so every hash point has an owner.
  cumulative_.back() = 1.0;
}

double HashBucketer::HashPoint(uint64_t unit_id) const {
  // Two splitmix64 rounds over the salted id: one round leaves low-entropy
  // ids (sequential query counters are the common case) visibly correlated
  // in the high bits; two fully avalanche them. Top 53 bits -> [0, 1).
  uint64_t state = unit_id ^ (split_.salt * 0x9e3779b97f4a7c15ULL);
  SplitMix64(&state);
  const uint64_t h = SplitMix64(&state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

size_t HashBucketer::ArmForId(uint64_t unit_id) const {
  const double point = HashPoint(unit_id);
  // Linear scan: experiments have a handful of arms, and the scan keeps the
  // interval geometry (first boundary >= point wins) trivially auditable.
  for (size_t arm = 0; arm + 1 < cumulative_.size(); ++arm) {
    if (point < cumulative_[arm]) return arm;
  }
  return cumulative_.size() - 1;
}

}  // namespace randrank
