#include "exp/traffic_split.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

#include "util/rng.h"

namespace randrank {

namespace {

/// Below this width a hash segment holds no representable mass worth
/// scanning for; such slivers are float-drift artifacts of reallocation.
constexpr double kSegmentEpsilon = 1e-12;

}  // namespace

TrafficSplit TrafficSplit::Even(size_t arms, uint64_t salt) {
  TrafficSplit split;
  split.salt = salt;
  split.fractions.assign(std::max<size_t>(1, arms),
                         1.0 / static_cast<double>(std::max<size_t>(1, arms)));
  return split;
}

bool TrafficSplit::Valid() const {
  if (fractions.empty()) return false;
  double total = 0.0;
  for (const double f : fractions) {
    if (!(f >= 0.0) || f > 1.0) return false;
    total += f;
  }
  return std::abs(total - 1.0) <= 1e-9;
}

HashBucketer::HashBucketer(TrafficSplit split) : split_(std::move(split)) {
  assert(split_.Valid());
  segments_.reserve(split_.fractions.size());
  double running = 0.0;
  for (size_t arm = 0; arm < split_.fractions.size(); ++arm) {
    running += split_.fractions[arm];
    segments_.emplace_back(running, static_cast<uint32_t>(arm));
  }
  NormalizeSegments();
}

void HashBucketer::NormalizeSegments() {
  std::vector<std::pair<double, uint32_t>> out;
  out.reserve(segments_.size());
  double begin = 0.0;
  for (const auto& [end, arm] : segments_) {
    if (end - begin < kSegmentEpsilon) continue;  // empty sliver
    if (!out.empty() && out.back().second == arm) {
      out.back().first = end;  // merge with the adjacent same-arm segment
    } else {
      out.emplace_back(end, arm);
    }
    begin = end;
  }
  if (out.empty()) out.emplace_back(1.0, 0u);
  // Float summation drift must not orphan the top of the hash interval —
  // the last boundary is exactly 1 so every hash point has an owner.
  out.back().first = 1.0;
  segments_ = std::move(out);
}

double HashBucketer::HashPoint(uint64_t unit_id) const {
  // Two splitmix64 rounds over the salted id: one round leaves low-entropy
  // ids (sequential query counters are the common case) visibly correlated
  // in the high bits; two fully avalanche them. Top 53 bits -> [0, 1).
  uint64_t state = unit_id ^ (split_.salt * 0x9e3779b97f4a7c15ULL);
  SplitMix64(&state);
  const uint64_t h = SplitMix64(&state);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

size_t HashBucketer::ArmForId(uint64_t unit_id) const {
  const double point = HashPoint(unit_id);
  // Linear scan: experiments have a handful of arms (reallocation can at
  // most add one extra segment per shrink), and the scan keeps the interval
  // geometry (first boundary > point wins) trivially auditable.
  for (size_t i = 0; i + 1 < segments_.size(); ++i) {
    if (point < segments_[i].first) return segments_[i].second;
  }
  return segments_.back().second;
}

HashBucketer HashBucketer::Reallocated(const TrafficSplit& new_split) const {
  assert(new_split.Valid());
  assert(new_split.arms() == split_.arms());
  if (new_split.salt != split_.salt || new_split.arms() != split_.arms()) {
    // A different salt is a different hash universe: no assignment can be
    // preserved, so fall back to a fresh cumulative bucketing.
    return HashBucketer(new_split);
  }

  const size_t arms = split_.arms();
  std::vector<double> delta(arms);
  for (size_t a = 0; a < arms; ++a) {
    delta[a] = new_split.fractions[a] - split_.fractions[a];
  }

  // Explicit (begin, end, arm) pieces of the current partition.
  struct Piece {
    double begin;
    double end;
    uint32_t arm;
  };
  std::vector<Piece> pieces;
  pieces.reserve(segments_.size() * 2);
  double begin = 0.0;
  for (const auto& [end, arm] : segments_) {
    pieces.push_back({begin, end, arm});
    begin = end;
  }

  // Shrinking arms cede exactly their lost mass, trimmed from the RIGHT end
  // of their right-most segments first (mirrors the fresh-construction ramp
  // geometry: an arm grows and shrinks at its top boundary). Ceded
  // sub-intervals are parked under a sentinel owner.
  constexpr uint32_t kCeded = ~0u;
  for (size_t a = 0; a < arms; ++a) {
    double to_cede = -delta[a];
    if (to_cede <= kSegmentEpsilon) continue;
    for (size_t i = pieces.size(); i-- > 0 && to_cede > kSegmentEpsilon;) {
      Piece& piece = pieces[i];
      if (piece.arm != a) continue;
      const double width = piece.end - piece.begin;
      const double take = std::min(width, to_cede);
      to_cede -= take;
      const double cut = piece.end - take;
      if (take >= width - kSegmentEpsilon) {
        piece.arm = kCeded;  // whole piece ceded
      } else {
        pieces.push_back({cut, piece.end, kCeded});
        piece.end = cut;
      }
    }
  }
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& x, const Piece& y) { return x.begin < y.begin; });

  // Growing arms absorb the ceded intervals in arm-index order, filling
  // hash-order first. Their existing segments are untouched, so every unit
  // already in a non-shrinking arm keeps its assignment.
  size_t grower = 0;
  double need = 0.0;
  const auto next_grower = [&]() {
    while (grower < arms && delta[grower] <= kSegmentEpsilon) ++grower;
    need = grower < arms ? delta[grower] : 0.0;
  };
  next_grower();
  std::vector<Piece> assigned;
  for (Piece& piece : pieces) {
    while (piece.arm == kCeded && piece.end - piece.begin > kSegmentEpsilon) {
      if (grower >= arms) {
        // Float-drift residue with every grower satisfied: hand it to the
        // last arm that grew (there is one — mass ceded implies mass
        // gained, both splits summing to 1).
        size_t last = arms;
        for (size_t a = arms; a-- > 0;) {
          if (delta[a] > kSegmentEpsilon) { last = a; break; }
        }
        piece.arm = static_cast<uint32_t>(last < arms ? last : 0);
        break;
      }
      const double width = piece.end - piece.begin;
      if (width <= need + kSegmentEpsilon) {
        piece.arm = static_cast<uint32_t>(grower);
        need -= width;
        if (need <= kSegmentEpsilon) { ++grower; next_grower(); }
      } else {
        assigned.push_back(
            {piece.begin, piece.begin + need, static_cast<uint32_t>(grower)});
        piece.begin += need;
        ++grower;
        next_grower();
      }
    }
  }
  pieces.insert(pieces.end(), assigned.begin(), assigned.end());
  std::sort(pieces.begin(), pieces.end(),
            [](const Piece& x, const Piece& y) { return x.begin < y.begin; });

  HashBucketer out;
  out.split_ = new_split;
  out.segments_.reserve(pieces.size());
  for (const Piece& piece : pieces) {
    out.segments_.emplace_back(piece.end, piece.arm);
  }
  out.NormalizeSegments();
  return out;
}

}  // namespace randrank
