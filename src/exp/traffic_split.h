#ifndef RANDRANK_EXP_TRAFFIC_SPLIT_H_
#define RANDRANK_EXP_TRAFFIC_SPLIT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace randrank {

/// How live traffic is divided across experiment arms: one fraction per arm
/// (summing to ~1) plus a salt that decorrelates this experiment's bucketing
/// from any other experiment hashing the same unit ids.
struct TrafficSplit {
  /// Fraction of traffic routed to each arm, in arm order. Must be
  /// non-negative and sum to 1 within a small tolerance.
  std::vector<double> fractions;
  /// Experiment-identity salt mixed into the unit hash. Two experiments with
  /// different salts bucket the same population independently; re-using a
  /// salt reproduces the exact assignment (including across process runs).
  uint64_t salt = 0xab5a17ULL;

  /// Equal split over `arms` arms.
  static TrafficSplit Even(size_t arms, uint64_t salt = 0xab5a17ULL);

  bool Valid() const;
  size_t arms() const { return fractions.size(); }
};

/// Deterministic unit-of-diversion -> arm assignment by hash bucketing: a
/// unit id (user or query-stream id) is hashed to a uniform point in [0, 1)
/// and the split's cumulative fractions partition that interval into arms.
///
/// Properties the experiment layer depends on (pinned by tests/exp_test.cc):
///  * **Deterministic & epoch-stable** — assignment is a pure function of
///    (salt, id): the same unit lands in the same arm on every query, every
///    epoch, every process run. No Rng is consumed, so routing is
///    independent of the policies' own randomness by construction.
///  * **Unbiased** — arm occupancy matches the fractions (chi-squared
///    verified over large id populations, at several fraction vectors).
///  * **Monotone ramps** — arms own contiguous hash intervals anchored at
///    the cumulative boundaries, with the LAST arm owning the top interval
///    [1 - f, 1). Growing the last arm's fraction (the canonical treatment
///    ramp 1% -> 5% -> 50%) only moves units INTO it; every unit already in
///    the treatment stays, so per-unit experiences never flip back and forth
///    during a ramp.
class HashBucketer {
 public:
  explicit HashBucketer(TrafficSplit split);

  /// Arm index in [0, arms()) for the given unit id.
  size_t ArmForId(uint64_t unit_id) const;

  /// The uniform hash point in [0, 1) the id buckets by (exposed so tests
  /// can verify the interval geometry and ramp monotonicity directly).
  double HashPoint(uint64_t unit_id) const;

  size_t arms() const { return split_.arms(); }
  const TrafficSplit& split() const { return split_; }

 private:
  TrafficSplit split_;
  /// cumulative_[i] = upper hash boundary of arm i; back() == 1.
  std::vector<double> cumulative_;
};

}  // namespace randrank

#endif  // RANDRANK_EXP_TRAFFIC_SPLIT_H_
