#ifndef RANDRANK_EXP_TRAFFIC_SPLIT_H_
#define RANDRANK_EXP_TRAFFIC_SPLIT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace randrank {

/// How live traffic is divided across experiment arms: one fraction per arm
/// (summing to ~1) plus a salt that decorrelates this experiment's bucketing
/// from any other experiment hashing the same unit ids.
struct TrafficSplit {
  /// Fraction of traffic routed to each arm, in arm order. Must be
  /// non-negative and sum to 1 within a small tolerance. A fraction of
  /// exactly 0 is legal — an eliminated arm keeps its slot (indices stay
  /// stable) while receiving no traffic.
  std::vector<double> fractions;
  /// Experiment-identity salt mixed into the unit hash. Two experiments with
  /// different salts bucket the same population independently; re-using a
  /// salt reproduces the exact assignment (including across process runs).
  uint64_t salt = 0xab5a17ULL;

  /// Equal split over `arms` arms.
  static TrafficSplit Even(size_t arms, uint64_t salt = 0xab5a17ULL);

  bool Valid() const;
  size_t arms() const { return fractions.size(); }
};

/// Deterministic unit-of-diversion -> arm assignment by hash bucketing: a
/// unit id (user or query-stream id) is hashed to a uniform point in [0, 1)
/// and a piecewise partition of that interval maps points to arms.
///
/// Properties the experiment layer depends on (pinned by tests/exp_test.cc):
///  * **Deterministic & epoch-stable** — assignment is a pure function of
///    (salt, id, partition): the same unit lands in the same arm on every
///    query, every epoch, every process run. No Rng is consumed, so routing
///    is independent of the policies' own randomness by construction.
///  * **Unbiased** — arm occupancy matches the fractions (chi-squared
///    verified over large id populations, at several fraction vectors).
///  * **Monotone ramps** — on fresh construction arms own contiguous hash
///    intervals anchored at the cumulative boundaries, with the LAST arm
///    owning the top interval [1 - f, 1). Growing the last arm's fraction
///    (the canonical treatment ramp 1% -> 5% -> 50%) only moves units INTO
///    it; every unit already in the treatment stays, so per-unit experiences
///    never flip back and forth during a ramp.
///  * **Reallocation stability** — Reallocated() applies new fractions by
///    moving hash mass ONLY from arms that shrank to arms that grew: a unit
///    changes arm only if its current arm lost traffic share, and it can
///    only land in an arm that gained share. Arms whose fraction did not
///    decrease keep every unit they had — the invariant the adaptive
///    (best-arm) layer needs when it retires an arm and redistributes its
///    traffic across the survivors.
class HashBucketer {
 public:
  explicit HashBucketer(TrafficSplit split);

  /// Arm index in [0, arms()) for the given unit id.
  size_t ArmForId(uint64_t unit_id) const;

  /// The uniform hash point in [0, 1) the id buckets by (exposed so tests
  /// can verify the interval geometry and ramp monotonicity directly).
  double HashPoint(uint64_t unit_id) const;

  /// A bucketer serving `new_split` that preserves assignments wherever
  /// possible: each shrinking arm cedes exactly its lost mass (taken from
  /// the right end of its hash segments), and the ceded intervals are
  /// re-labeled to the growing arms in arm-index order. Arms whose fraction
  /// is unchanged (or grew) keep their entire current population. Requires
  /// the same arm count; a different salt forces a fresh re-bucketing (the
  /// stability guarantee only holds within one hash universe).
  HashBucketer Reallocated(const TrafficSplit& new_split) const;

  size_t arms() const { return split_.arms(); }
  const TrafficSplit& split() const { return split_; }

  /// The piecewise hash->arm partition, as (end, arm) pairs sorted by
  /// position; segment i covers [end[i-1], end[i]) (the first starts at 0,
  /// the last ends at exactly 1). Exposed for tests and for allocation
  /// diagnostics (a freshly constructed bucketer has one segment per
  /// positive-fraction arm; reallocation can fragment arms into several).
  const std::vector<std::pair<double, uint32_t>>& segments() const {
    return segments_;
  }

 private:
  HashBucketer() = default;
  /// Drops empty segments, merges adjacent same-arm segments, and pins the
  /// final boundary to exactly 1 so every hash point has an owner.
  void NormalizeSegments();

  TrafficSplit split_;
  /// {upper hash boundary, owning arm}, sorted by boundary; back().first == 1.
  std::vector<std::pair<double, uint32_t>> segments_;
};

}  // namespace randrank

#endif  // RANDRANK_EXP_TRAFFIC_SPLIT_H_
