#include "exp/live_metrics.h"

#include <cassert>
#include <cmath>

#include "obs/metrics.h"
#include "util/stats.h"

namespace randrank {

LiveMetrics::LiveMetrics(size_t n)
    : impressions_(n, 0), birth_epoch_(n, -1), newborn_clicked_(n, 0) {}

void LiveMetrics::BeginEpoch(int64_t epoch) {
  epoch_ = epoch;
  epoch_queries_ = 0;
  epoch_clicks_ = 0;
  epoch_click_qualities_.clear();
}

void LiveMetrics::Absorb(const Shard& shard, const ServingPageState& state) {
  assert(shard.impressions.size() == impressions_.size());
  assert(state.n() == impressions_.size());
  for (size_t p = 0; p < impressions_.size(); ++p) {
    impressions_[p] += shard.impressions[p];
  }
  queries_ += shard.queries;
  slots_served_ += shard.slots;
  epoch_queries_ += shard.queries;
  for (const uint32_t page : shard.clicked) {
    ++clicks_;
    ++epoch_clicks_;
    click_quality_sum_ += state.quality[page];
    epoch_click_qualities_.push_back(state.quality[page]);
    undiscovered_clicks_ += state.zero_awareness[page];
    // Newborn first-click: the birth clock is per-arm, so two arms serving
    // the same churn schedule measure their own discovery speeds.
    if (birth_epoch_[page] >= 0 && !newborn_clicked_[page]) {
      newborn_clicked_[page] = 1;
      ttfc_epochs_.push_back(static_cast<double>(epoch_ - birth_epoch_[page]));
    }
  }
}

void LiveMetrics::RecordBirths(const std::vector<uint32_t>& born,
                               int64_t epoch) {
  for (const uint32_t page : born) {
    assert(page < birth_epoch_.size());
    // A rebirth closes the previous life's clock: an unclicked life is
    // censored at ITS OWN observable lifetime, not the run horizon.
    if (birth_epoch_[page] >= 0 && !newborn_clicked_[page]) {
      censored_life_epochs_.push_back(
          static_cast<double>(epoch - birth_epoch_[page]));
    }
    birth_epoch_[page] = epoch;
    newborn_clicked_[page] = 0;
    ++tracked_newborns_;
  }
}

LiveMetricsSnapshot LiveMetrics::Snapshot() const {
  LiveMetricsSnapshot snap;
  snap.queries = queries_;
  snap.slots_served = slots_served_;
  snap.clicks = clicks_;
  snap.click_qpc =
      clicks_ > 0 ? click_quality_sum_ / static_cast<double>(clicks_) : 0.0;
  snap.tail_share = clicks_ > 0 ? static_cast<double>(undiscovered_clicks_) /
                                      static_cast<double>(clicks_)
                                : 0.0;
  std::vector<double> mass;
  mass.reserve(impressions_.size());
  size_t distinct = 0;
  for (const uint64_t count : impressions_) {
    distinct += count > 0;
    mass.push_back(static_cast<double>(count));
  }
  snap.distinct_pages = distinct;
  snap.impression_gini = GiniCoefficient(mass);
  snap.impression_entropy_bits = ShannonEntropyBits(mass);
  snap.newborn_births = tracked_newborns_;
  snap.newborn_clicked = ttfc_epochs_.size();
  snap.ttfc_median_epochs =
      ttfc_epochs_.empty() ? 0.0 : Percentile(ttfc_epochs_, 50.0);
  snap.epoch_queries = epoch_queries_;
  snap.epoch_clicks = epoch_clicks_;
  return snap;
}

EpochReward LiveMetrics::EpochRewardSummary(double cvar_alpha) const {
  assert(cvar_alpha > 0.0 && cvar_alpha <= 1.0);
  EpochReward reward;
  reward.queries = epoch_queries_;
  reward.clicks = epoch_clicks_;
  assert(epoch_click_qualities_.size() == epoch_clicks_);
  for (const double q : epoch_click_qualities_) {
    reward.quality_sum += q;
    reward.quality_sq_sum += q * q;
  }
  if (epoch_click_qualities_.empty()) return reward;
  reward.mean =
      reward.quality_sum / static_cast<double>(epoch_click_qualities_.size());
  // Worst-tail mean: partial-select the lowest ceil(alpha * clicks)
  // qualities rather than sorting the whole epoch.
  const size_t tail = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(cvar_alpha *
                       static_cast<double>(epoch_click_qualities_.size()))));
  std::vector<double> worst = epoch_click_qualities_;
  std::nth_element(worst.begin(), worst.begin() + (tail - 1), worst.end());
  double tail_sum = 0.0;
  for (size_t i = 0; i < tail; ++i) tail_sum += worst[i];
  reward.cvar = tail_sum / static_cast<double>(tail);
  return reward;
}

void LiveMetrics::PublishTo(obs::MetricsRegistry& registry,
                            const std::string& prefix) const {
  const LiveMetricsSnapshot snap = Snapshot();
  const auto set = [&](const char* field, double value) {
    registry.GetGauge(prefix + "/" + field).Set(value);
  };
  set("queries", static_cast<double>(snap.queries));
  set("slots_served", static_cast<double>(snap.slots_served));
  set("clicks", static_cast<double>(snap.clicks));
  set("click_qpc", snap.click_qpc);
  set("tail_share", snap.tail_share);
  set("distinct_pages", static_cast<double>(snap.distinct_pages));
  set("impression_gini", snap.impression_gini);
  set("impression_entropy_bits", snap.impression_entropy_bits);
  set("newborn_births", static_cast<double>(snap.newborn_births));
  set("newborn_clicked", static_cast<double>(snap.newborn_clicked));
  set("ttfc_median_epochs", snap.ttfc_median_epochs);
  set("epoch_queries", static_cast<double>(snap.epoch_queries));
  set("epoch_clicks", static_cast<double>(snap.epoch_clicks));
}

std::vector<double> LiveMetrics::TtfcSamples(double censor_epochs) const {
  std::vector<double> samples = ttfc_epochs_;
  // Lives closed unclicked by a rebirth carry their own censoring time.
  for (const double life : censored_life_epochs_) {
    samples.push_back(std::min(life, censor_epochs));
  }
  // Lives still open and unclicked are censored at the horizon.
  assert(tracked_newborns_ >= ttfc_epochs_.size() + censored_life_epochs_.size());
  const size_t open_unclicked =
      tracked_newborns_ - ttfc_epochs_.size() - censored_life_epochs_.size();
  samples.insert(samples.end(), open_unclicked, censor_epochs);
  return samples;
}

}  // namespace randrank
