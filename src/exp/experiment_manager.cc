#include "exp/experiment_manager.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "core/visit_law.h"
#include "obs/metrics.h"

namespace randrank {

namespace {

TrafficSplit ResolveSplit(const TrafficSplit& requested, size_t arms) {
  if (requested.fractions.empty()) {
    return TrafficSplit::Even(arms, requested.salt);
  }
  if (requested.fractions.size() != arms || !requested.Valid()) {
    throw std::invalid_argument(
        "ExperimentOptions.split must be empty (even split) or hold one "
        "valid fraction per arm");
  }
  return requested;
}

}  // namespace

ExperimentManager::ExperimentManager(const CommunityParams& community,
                                     std::vector<ArmSpec> arms,
                                     ExperimentOptions options)
    : community_(community),
      opts_(options),
      bucketer_(ResolveSplit(options.split, arms.size())),
      lifecycle_(community, options.epochs_per_day) {
  if (arms.empty()) {
    throw std::invalid_argument("an experiment needs at least one arm");
  }
  for (const ArmSpec& spec : arms) {
    if (spec.policy == nullptr || !spec.policy->Valid()) {
      throw std::invalid_argument("arm \"" + spec.name +
                                  "\" has no valid policy");
    }
  }
  assert(community_.Valid());
  opts_.threads = std::max<size_t>(1, opts_.threads);
  opts_.top_m = std::max<size_t>(1, opts_.top_m);

  // One seed tree: quality assignment (shared by every arm), churn stream,
  // click/traffic streams, per-arm fold + serving seeds.
  uint64_t mix = opts_.seed;
  Rng setup_rng(SplitMix64(&mix));
  churn_rng_ = Rng(SplitMix64(&mix) ^ 0xc4081ULL);
  click_seed_ = SplitMix64(&mix) ^ 0xc11c5eedULL;

  // Every arm serves the SAME community: one quality assignment, copied
  // into per-arm mutable state (awareness diverges as each arm's own
  // traffic folds back).
  ServingPageState base = MakeServingPageState(community_, setup_rng);
  if (opts_.prediscovered_fraction > 0.0) {
    for (size_t p = 0; p < base.n(); ++p) {
      if (setup_rng.NextBernoulli(opts_.prediscovered_fraction)) {
        base.aware[p] = static_cast<uint32_t>(community_.u);
        base.popularity[p] = base.quality[p];
        base.zero_awareness[p] = 0;
      }
    }
  }
  arm_states_.reserve(arms.size());
  for (size_t a = 0; a < arms.size(); ++a) {
    ServeOptions sopts;
    sopts.shards = opts_.shards;
    sopts.enable_prefix_cache = opts_.enable_prefix_cache;
    sopts.seed = SplitMix64(&mix) + a;
    sopts.metrics = opts_.metrics;
    sopts.trace = opts_.trace;
    sopts.obs_prefix = "exp/arm:" + arms[a].name;
    auto server = std::make_unique<ShardedRankServer>(arms[a].policy,
                                                      community_.n, sopts);
    arm_states_.emplace_back(std::move(arms[a]), std::move(server), base,
                             community_.n);
    arm_states_.back().fold_rng = Rng(SplitMix64(&mix) ^ (a * 0x9e37ULL));
  }

  if (opts_.async_serving) {
    arm_queues_.reserve(arm_states_.size());
    for (ArmState& arm : arm_states_) {
      BatchQueueOptions qopts;
      qopts.max_batch = std::max<size_t>(1, opts_.async_max_batch);
      qopts.max_delay_us = opts_.async_max_delay_us;
      qopts.metrics = opts_.metrics;
      qopts.trace = opts_.trace;
      qopts.obs_prefix = "exp/arm:" + arm.spec.name + "/queue";
      arm_queues_.push_back(
          std::make_unique<BatchQueue>(*arm.server, qopts));
    }
  }

  // The first epoch is published by the first RunEpoch (PublishEpoch runs
  // at the START of each epoch, so pending swaps/splits scheduled before a
  // RunEpoch are active for exactly that epoch — the configuration the
  // epoch's metrics are attributed to is the one that actually served it).

  // Persistent per-worker serving state: contexts (one per arm, so a
  // worker's Rng streams survive across epochs), metric shards, and the
  // traffic rng that draws each query's user and clicked rank.
  worker_contexts_.resize(opts_.threads);
  worker_shards_.resize(opts_.threads);
  worker_rngs_.reserve(opts_.threads);
  for (size_t t = 0; t < opts_.threads; ++t) {
    worker_rngs_.push_back(Rng::ForStream(click_seed_, t));
    worker_contexts_[t].reserve(arm_states_.size());
    for (ArmState& arm : arm_states_) {
      worker_contexts_[t].push_back(arm.server->CreateContext());
      worker_shards_[t].emplace_back(community_.n);
    }
  }
}

const ArmSpec& ExperimentManager::arm_spec(size_t arm) const {
  return arm_states_.at(arm).spec;
}

const ShardedRankServer& ExperimentManager::arm_server(size_t arm) const {
  return *arm_states_.at(arm).server;
}

const ServingPageState& ExperimentManager::arm_page_state(size_t arm) const {
  return arm_states_.at(arm).state;
}

LiveMetricsSnapshot ExperimentManager::ArmSnapshot(size_t arm) const {
  return arm_states_.at(arm).metrics.Snapshot();
}

EpochReward ExperimentManager::ArmEpochReward(size_t arm,
                                              double cvar_alpha) const {
  return arm_states_.at(arm).metrics.EpochRewardSummary(cvar_alpha);
}

std::vector<double> ExperimentManager::ArmTtfcSamples(
    size_t arm, double censor_epochs) const {
  return arm_states_.at(arm).metrics.TtfcSamples(censor_epochs);
}

const std::vector<double>& ExperimentManager::quality() const {
  return arm_states_.front().state.quality;
}

void ExperimentManager::SwapPolicy(
    size_t arm, std::shared_ptr<const StochasticRankingPolicy> policy) {
  if (policy == nullptr || !policy->Valid()) {
    throw std::invalid_argument("SwapPolicy needs a valid policy");
  }
  arm_states_.at(arm).pending_policy = std::move(policy);
}

void ExperimentManager::SetSplit(TrafficSplit split) {
  if (split.fractions.size() != arms() || !split.Valid()) {
    throw std::invalid_argument(
        "SetSplit needs one valid fraction per existing arm");
  }
  pending_split_ = std::move(split);
  has_pending_split_ = true;
}

void ExperimentManager::ServeEpochTraffic() {
  const size_t threads = opts_.threads;
  const size_t total = opts_.queries_per_epoch;
  const VisitLaw click_law(opts_.top_m, 1.0, opts_.rank_bias_exponent);

  auto worker = [&](size_t t) {
    // Deterministic contiguous partition of the epoch's query indices, so
    // each worker's Rng consumption — and therefore the whole epoch's
    // realized traffic — is independent of thread scheduling.
    const size_t begin = t * total / threads;
    const size_t end = (t + 1) * total / threads;
    Rng& traffic_rng = worker_rngs_[t];
    std::vector<ShardedRankServer::Context>& contexts = worker_contexts_[t];
    std::vector<LiveMetrics::Shard>& shards = worker_shards_[t];

    // Shared by both serving paths: resolve one served result list into the
    // arm's metric shard and (rank-biased) click feedback.
    const auto settle = [&](size_t a, const std::vector<uint32_t>& results) {
      shards[a].RecordResult(results.data(), results.size());
      if (results.empty()) return;
      size_t rank = click_law.SampleRank(traffic_rng);
      if (rank > results.size()) rank = results.size();
      const uint32_t clicked = results[rank - 1];
      // Clicks go through the PRODUCER's context even in async mode: the
      // queue serves results from its consumer context, but feedback is
      // recorded on the caller's timeline (BatchQueue's contract).
      arm_states_[a].server->RecordVisit(contexts[a], clicked);
      shards[a].RecordClick(clicked);
    };

    if (arm_queues_.empty()) {
      std::vector<uint32_t> results;
      results.reserve(opts_.top_m);
      for (size_t q = begin; q < end; ++q) {
        // Unit of diversion: the querying user. Hash bucketing keeps each
        // user's arm fixed for the whole experiment (and across ramps, for
        // the arms whose interval is retained), consuming no randomness.
        const uint64_t user = traffic_rng.NextIndex(community_.u);
        const size_t a = bucketer_.ArmForId(user);
        ArmState& arm = arm_states_[a];
        arm.server->ServeTopM(contexts[a], opts_.top_m, &results);
        settle(a, results);
      }
    } else {
      // Async path: pipeline a bounded window of in-flight futures per
      // worker, settling strictly in submission order so this worker's
      // Rng consumption stays reproducible given the served lists.
      constexpr size_t kInflightWindow = 64;
      std::vector<std::pair<size_t, std::future<std::vector<uint32_t>>>>
          inflight;
      inflight.reserve(kInflightWindow);
      size_t settled = 0;
      for (size_t q = begin; q < end; ++q) {
        const uint64_t user = traffic_rng.NextIndex(community_.u);
        const size_t a = bucketer_.ArmForId(user);
        inflight.emplace_back(a, arm_queues_[a]->Submit(opts_.top_m));
        if (inflight.size() - settled >= kInflightWindow) {
          settle(inflight[settled].first, inflight[settled].second.get());
          ++settled;
        }
      }
      for (; settled < inflight.size(); ++settled) {
        settle(inflight[settled].first, inflight[settled].second.get());
      }
    }
    for (size_t a = 0; a < arm_states_.size(); ++a) {
      arm_states_[a].server->FlushFeedback(contexts[a]);
    }
  };

  if (threads == 1) {
    worker(0);
    return;
  }
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (size_t t = 0; t < threads; ++t) pool.emplace_back(worker, t);
  for (auto& th : pool) th.join();
}

void ExperimentManager::PublishEpoch() {
  for (ArmState& arm : arm_states_) {
    // A pending hot-swap rides the epoch publish: the new policy, its
    // ranking state, and its epoch cache swap in as one atomic unit.
    std::shared_ptr<const StochasticRankingPolicy> swap =
        std::move(arm.pending_policy);
    arm.pending_policy = nullptr;
    arm.server->Update(arm.state.popularity, arm.state.zero_awareness,
                       arm.state.birth_step, swap);
    if (swap != nullptr) arm.spec.policy = std::move(swap);
  }
  if (has_pending_split_) {
    // Segment-preserving reallocation: only users of arms that LOST share
    // can move, and only into arms that gained — survivors of an
    // elimination keep their population (HashBucketer's stability
    // contract, pinned by exp_test).
    bucketer_ = bucketer_.Reallocated(pending_split_);
    pending_split_ = TrafficSplit{};
    has_pending_split_ = false;
  }
}

void ExperimentManager::RunEpoch() {
  const int64_t serving = epoch_ + 1;
  // Pending SwapPolicy/SetSplit apply here, before any of this epoch's
  // traffic: the served configuration IS the one reported for the epoch.
  PublishEpoch();
  for (ArmState& arm : arm_states_) {
    assert(static_cast<int64_t>(arm.server->epoch()) == serving);
    arm.metrics.BeginEpoch(serving);
  }
  for (auto& shards : worker_shards_) {
    for (auto& shard : shards) shard.Reset();
  }

  ServeEpochTraffic();

  for (size_t a = 0; a < arm_states_.size(); ++a) {
    ArmState& arm = arm_states_[a];
    // Absorb against the state the epoch was SERVED under (pre-fold).
    for (size_t t = 0; t < opts_.threads; ++t) {
      arm.metrics.Absorb(worker_shards_[t][a], arm.state);
    }
    // Each arm folds only its own observed clicks: causal isolation.
    FoldVisits(arm.server->DrainVisits(), &arm.state, arm.fold_rng);
  }

  if (opts_.churn) {
    // One churn realization, applied to every arm (common random numbers).
    // Reborn pages enter the ranking state at the next epoch's publish.
    const std::vector<uint32_t> dead = lifecycle_.DrawDeaths(churn_rng_);
    for (ArmState& arm : arm_states_) {
      PageLifecycle::ApplyDeaths(dead, serving, &arm.state);
      arm.metrics.RecordBirths(dead, serving);
    }
  }

  if (opts_.metrics != nullptr) {
    // The epoch's health metrics ride the registry under the same per-arm
    // prefixes the serve layer instruments, one exporter feed for the run.
    // The live gauges get their own /live segment: the serve layer already
    // owns e.g. exp/arm:X/queries as a counter, and the registry rejects
    // re-registering a name as a different kind.
    for (size_t a = 0; a < arm_states_.size(); ++a) {
      const std::string prefix = "exp/arm:" + arm_states_[a].spec.name;
      arm_states_[a].metrics.PublishTo(*opts_.metrics, prefix + "/live");
      opts_.metrics->GetGauge(prefix + "/split")
          .Set(bucketer_.split().fractions[a]);
    }
  }

  epoch_ = serving;
}

void ExperimentManager::EmitEpochJsonl(std::ostream& os) const {
  for (size_t a = 0; a < arm_states_.size(); ++a) {
    const ArmState& arm = arm_states_[a];
    const LiveMetricsSnapshot snap = arm.metrics.Snapshot();
    os.precision(std::numeric_limits<double>::max_digits10);
    os << "{\"arm\":\"" << arm.spec.name << "\",\"policy\":\""
       << arm.spec.policy->Label() << "\",\"epoch\":" << epoch_
       << ",\"split\":" << bucketer_.split().fractions[a]
       << ",\"epoch_queries\":" << snap.epoch_queries
       << ",\"epoch_clicks\":" << snap.epoch_clicks
       << ",\"queries\":" << snap.queries << ",\"clicks\":" << snap.clicks
       << ",\"click_qpc\":" << snap.click_qpc
       << ",\"tail_share\":" << snap.tail_share
       << ",\"distinct_pages\":" << snap.distinct_pages
       << ",\"impression_gini\":" << snap.impression_gini
       << ",\"impression_entropy_bits\":" << snap.impression_entropy_bits
       << ",\"newborn_births\":" << snap.newborn_births
       << ",\"newborn_clicked\":" << snap.newborn_clicked
       << ",\"ttfc_median_epochs\":" << snap.ttfc_median_epochs << "}\n";
  }
}

}  // namespace randrank
